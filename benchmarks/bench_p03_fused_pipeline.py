"""P3 — fused zero-copy pipeline vs the materializing executor.

The fused executor collapses Filter→Project→GroupByAggregate chains into
one pass over lazy column views: the scan materializes nothing, the
filter is a selection vector, and the aggregate folds over only the
columns the query actually reads. On a wide table the materializing
reference pays for every column twice (scan copy + filter take); the
fused path pays for the three or four referenced ones, once.

Two claims pinned here:

1. **Speedup with identical answers**: on a 24-column, 350k-row table
   with a ~50%-selective predicate, the fused run is at least
   ``MIN_SPEEDUP``x faster (best of 3) while returning a bit-identical
   table and *exactly* equal ``ExecutionStats``/simulated cost — the
   speedup is real work avoided, not accounting skew.
2. **Warm kernel cache beats cold**: re-running a plan reuses the
   compiled kernels (signature-addressed, content-fingerprinted). The
   per-query kernel preparation step — signature + compile on a miss,
   signature + lookup on a hit — is timed cold (cache cleared every
   iteration) vs warm, and the warm path must win with the counters
   proving the hits happened.
"""

import time

import numpy as np
import pytest

from common import once, record_metric, table, write_report
from repro import Database
from repro.engine.fused import chain_signature, compile_chain, extract_chain
from repro.engine.kernel_cache import KernelCache
from repro.sql.binder import bind_sql

N_ROWS = 350_000
N_WIDE_COLS = 20  # padding columns on top of the 4 the query touches
QUERY = (
    "SELECT g AS g, SUM(x * y) AS s, AVG(x) AS m, COUNT(*) AS c "
    "FROM wide WHERE sel < 0.48 GROUP BY g"
)
MIN_SPEEDUP = 3.0
REPEATS = 3
CACHE_ITERS = 3_000


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(17)
    cols = {
        "g": rng.integers(0, 32, N_ROWS),
        "x": rng.exponential(5.0, N_ROWS),
        "y": rng.random(N_ROWS),
        "sel": rng.random(N_ROWS),
    }
    for i in range(N_WIDE_COLS):
        cols[f"pad{i:02d}"] = rng.random(N_ROWS)
    db = Database()
    db.create_table("wide", cols, block_size=4096)
    return db


def _best(fn, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _stats_key(stats) -> tuple:
    return (
        stats.rows_scanned,
        stats.blocks_scanned,
        stats.rows_sampled,
        stats.agg_input_rows,
        stats.rows_output,
        stats.blocks_available,
        stats.simulated_cost().total,
    )


def test_p03_fused_pipeline(benchmark, world):
    db = world
    plan = bind_sql(QUERY, db).plan
    table_obj = db.table("wide")

    def compute():
        fused_t, fused_s = db.execute(plan, optimize=False)
        mat_t, mat_s = db.execute(plan, optimize=False, fused=False)
        # Identical answers and identical accounting — the precondition
        # for calling the wall-clock difference a pure execution win.
        assert fused_t.column_names == mat_t.column_names
        for name in fused_t.column_names:
            assert np.array_equal(fused_t[name], mat_t[name])
        assert _stats_key(fused_s) == _stats_key(mat_s)

        fused_wall = _best(lambda: db.execute(plan, optimize=False))
        mat_wall = _best(
            lambda: db.execute(plan, optimize=False, fused=False)
        )
        speedup = mat_wall / fused_wall

        # Kernel-cache claim: the per-query kernel preparation — what an
        # executor does between binding and folding — timed with the
        # cache cleared every iteration (cold: signature + compile) vs
        # reused (warm: signature + LRU hit).
        chain = extract_chain(plan) or extract_chain(plan.child)
        fingerprint = table_obj.fingerprint()
        cache = KernelCache()

        def prepare():
            key = (fingerprint, chain_signature(chain))
            return cache.get_or_compile(key, lambda: compile_chain(chain))

        def cold_loop():
            for _ in range(CACHE_ITERS):
                cache.clear()
                prepare()

        def warm_loop():
            for _ in range(CACHE_ITERS):
                prepare()

        cold_wall = _best(cold_loop)
        cache.stats.reset()
        prepare()  # ensure the entry is resident before the warm loop
        warm_wall = _best(warm_loop)
        assert cache.stats.hits >= REPEATS * CACHE_ITERS
        assert cache.stats.misses <= 1

        record_metric(
            "bench_p03_fused_pipeline",
            "pipeline",
            {
                "rows": N_ROWS,
                "columns": 4 + N_WIDE_COLS,
                "fused_seconds": fused_wall,
                "materializing_seconds": mat_wall,
                "speedup": speedup,
                "simulated_cost": _stats_key(fused_s)[-1],
            },
        )
        record_metric(
            "bench_p03_fused_pipeline",
            "kernel_cache",
            {
                "iterations": CACHE_ITERS,
                "cold_prepare_us": cold_wall / CACHE_ITERS * 1e6,
                "warm_prepare_us": warm_wall / CACHE_ITERS * 1e6,
                "cold_vs_warm": cold_wall / warm_wall,
                "stats": cache.stats.as_dict(),
            },
        )
        return fused_wall, mat_wall, speedup, cold_wall, warm_wall

    fused_wall, mat_wall, speedup, cold_wall, warm_wall = once(
        benchmark, compute
    )
    write_report(
        "P03_fused_pipeline",
        [
            f"fused vs materializing, {N_ROWS:,} rows x "
            f"{4 + N_WIDE_COLS} columns, best of {REPEATS}",
            "",
            *table(
                ["mode", "ms", "speedup"],
                [
                    ("materializing", f"{mat_wall * 1e3:.1f}", "1.00x"),
                    ("fused", f"{fused_wall * 1e3:.1f}", f"{speedup:.2f}x"),
                ],
            ),
            "",
            f"kernel prepare ({CACHE_ITERS} iterations): cold "
            f"{cold_wall / CACHE_ITERS * 1e6:.1f} us, warm "
            f"{warm_wall / CACHE_ITERS * 1e6:.1f} us "
            f"({cold_wall / warm_wall:.1f}x)",
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fused pipeline is only {speedup:.2f}x the materializing path "
        f"(claim: >= {MIN_SPEEDUP:g}x)"
    )
    assert warm_wall < cold_wall, (
        f"warm kernel cache ({warm_wall:.4f}s) slower than cold "
        f"({cold_wall:.4f}s)"
    )
