"""E9 — query-time sampling (Quickr): ad-hoc coverage, one pass, bounded
gains, a-posteriori errors.

Claims: (a) Quickr answers ad-hoc queries with no precomputation and at
most one pass over the data, so its speedup is real but bounded by the
scan; (b) its errors are only known *after* execution — a share of
queries misses the requested error, unlike the pilot planner which either
guarantees or refuses; (c) the distinct sampler keeps group coverage.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro import ApproximateResult, ErrorSpec
from repro.online import QuickrPlanner, PilotPlanner
from repro.core.exceptions import InfeasiblePlanError, UnsupportedQueryError
from repro.sql import bind_sql
from repro.workloads import TPCH_LITE_QUERIES


QUERIES = ["q6_forecast", "q12_shipmode", "avg_price", "priority_revenue"]


def truth_map(db, sql, aggs):
    exact = db.sql(sql)
    out = []
    for row in exact.to_pylist():
        out.append({a: row[a] for a in aggs})
    return exact, out


def test_e09_quickr_vs_pilot_behaviour(benchmark, tpch):
    spec = ErrorSpec(0.05, 0.95)

    def compute():
        rows = []
        for name in QUERIES:
            sql = TPCH_LITE_QUERIES[name]
            bound = bind_sql(sql, tpch)
            q = QuickrPlanner(tpch, seed=5).run(bound, spec)
            try:
                p = PilotPlanner(tpch, seed=5).run(bound, spec)
                pilot_out = ("approximate", p.speedup, p.fraction_scanned)
            except (InfeasiblePlanError, UnsupportedQueryError):
                pilot_out = ("refused", None, None)
            rows.append(
                (
                    name,
                    q.speedup,
                    q.diagnostics["met_spec"],
                    pilot_out[0],
                    pilot_out[1],
                )
            )
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e09_quickr_vs_pilot",
        table(
            ["query", "quickr speedup", "quickr met spec?", "pilot decision",
             "pilot speedup"],
            [
                (n, f"{s:.2f}", m, d, f"{ps:.2f}" if ps else "-")
                for n, s, m, d, ps in rows
            ],
        ),
    )
    # Shape: quickr speedups are bounded (one pass ⇒ < ~3x in this cost
    # model); it always *answers* but may miss the spec.
    for _, speedup, _, _, _ in rows:
        assert 0.8 < speedup < 3.0


def test_e09_a_posteriori_misses(benchmark, tpch):
    """Run many grouped queries under a tight spec: quickr answers all of
    them, and a nonzero share fails the spec a posteriori."""

    def compute():
        spec = ErrorSpec(0.01, 0.95)  # deliberately tight for a 10% sample
        missed = answered = 0
        for seed in range(10):
            bound = bind_sql(TPCH_LITE_QUERIES["q12_shipmode"], tpch)
            res = QuickrPlanner(tpch, seed=seed).run(bound, spec)
            answered += 1
            if not res.diagnostics["met_spec"]:
                missed += 1
        return answered, missed

    answered, missed = once(benchmark, compute)
    write_report(
        "e09_misses",
        table(
            ["answered", "missed ±1% spec (a posteriori)"],
            [(answered, missed)],
        ),
    )
    assert answered == 10
    assert missed >= 1  # best-effort errors: some misses expected


def test_e09_distinct_sampler_group_coverage(benchmark, tpch):
    def compute():
        sql = (
            "SELECT l_partkey, SUM(l_extendedprice) AS s FROM lineitem "
            "GROUP BY l_partkey"
        )
        exact_groups = tpch.sql(sql).table.num_rows
        bound = bind_sql(sql, tpch)
        res = QuickrPlanner(tpch, seed=6).run(bound, ErrorSpec(0.1, 0.9))
        return exact_groups, res.table.num_rows, res.diagnostics["sampler"]

    exact_groups, approx_groups, sampler = once(benchmark, compute)
    write_report(
        "e09_group_coverage",
        table(
            ["sampler chosen", "true groups", "groups in answer"],
            [(sampler, exact_groups, approx_groups)],
        ),
    )
    assert sampler == "distinct"
    assert approx_groups == exact_groups
