"""E1 — uniform sampling's error/cost trade-off for simple aggregates.

Claim: for SUM/AVG/COUNT over mildly skewed data, uniform sampling error
decays like 1/√n while the data touched grows linearly — the basic deal
all of sampling-based AQP rests on. Also: on block storage, row-level
sampling touches nearly every block, so only block sampling's *cost*
actually tracks the sampling rate.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro import Database, Table
from repro.estimators.closed_form import bernoulli_sum
from repro.sampling.row import bernoulli_sample
from repro.storage.cost import block_sample_cost, row_sample_cost, scan_cost
from repro.workloads import uniform_table

RATES = [0.0005, 0.001, 0.005, 0.01, 0.05, 0.1]
TRIALS = 25


@pytest.fixture(scope="module")
def data():
    return Table(uniform_table(400_000, seed=1), name="t", block_size=1024)


def measure_errors(data):
    truth = float(data["value"].sum())
    rows = []
    for rate in RATES:
        errs = []
        for trial in range(TRIALS):
            rng = np.random.default_rng(1000 + trial)
            mask = rng.random(data.num_rows) < rate
            est = bernoulli_sum(data["value"][mask], rate)
            errs.append(abs(est.value - truth) / truth)
        rows.append((rate, float(np.median(errs)), float(np.max(errs))))
    return rows


def test_e01_error_decay(benchmark, data):
    rows = once(benchmark, lambda: measure_errors(data))
    report = [(r, f"{med:.4%}", f"{worst:.4%}") for r, med, worst in rows]
    write_report(
        "e01_error_decay",
        table(["rate", "median relerr", "max relerr"], report),
    )
    # Shape: error at rate r should scale roughly like 1/sqrt(r):
    # moving from 0.1% to 10% (100x rows) cuts error by ~10x.
    lo = rows[1][1]
    hi = rows[-1][1]
    assert hi < lo / 3
    # And errors at 1% sampling are already ~1% for this benign data.
    at_1pct = next(med for r, med, _ in rows if r == 0.01)
    assert at_1pct < 0.05


def test_e01_cost_rows_vs_blocks(benchmark, data):
    def compute():
        nb, bs = data.num_blocks, data.block_size
        full = scan_cost(nb, data.num_rows).total
        rows = []
        for rate in RATES:
            rows.append(
                (
                    rate,
                    row_sample_cost(nb, bs, rate).total / full,
                    block_sample_cost(nb, bs, rate).total / full,
                )
            )
        return rows

    rows = once(benchmark, compute)
    report = [(r, f"{rowc:.3f}", f"{blockc:.3f}") for r, rowc, blockc in rows]
    write_report(
        "e01_cost_model",
        table(["rate", "row-sample cost / scan", "block-sample cost / scan"], report),
    )
    # Shape: at 1% rate, row sampling costs ~a full scan; block sampling ~1%.
    r1 = next(r for r in rows if r[0] == 0.01)
    assert r1[1] > 0.9
    assert r1[2] < 0.1


def test_e01_engine_accounting_matches_model(benchmark, data):
    """The executor's measured blocks-touched reproduces the model's gap."""
    db = Database()
    db.create_table("t", data)

    def run():
        out = {}
        for method, clause in (
            ("rows", "TABLESAMPLE BERNOULLI (1)"),
            ("blocks", "TABLESAMPLE SYSTEM (1)"),
        ):
            res = db.sql(f"SELECT SUM(value) AS s FROM t {clause}", seed=5)
            out[method] = res.stats.fraction_blocks_read
        return out

    fractions = once(benchmark, run)
    write_report(
        "e01_engine_accounting",
        table(
            ["sampler", "fraction of blocks touched at 1%"],
            [(k, f"{v:.3f}") for k, v in fractions.items()],
        ),
    )
    assert fractions["rows"] > 0.9
    assert fractions["blocks"] < 0.05
