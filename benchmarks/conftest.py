"""Benchmark fixtures shared across experiments."""

import sys
import os

sys.path.insert(0, os.path.dirname(__file__))

import numpy as np
import pytest

from repro.workloads import generate_ssb, generate_tpch


@pytest.fixture(scope="session")
def tpch():
    """TPC-H-lite big enough that block sampling pays off."""
    return generate_tpch(scale=5.0, seed=17, block_size=512)


@pytest.fixture(scope="session")
def ssb():
    return generate_ssb(scale=2.0, seed=17, block_size=512)


@pytest.fixture
def rng():
    return np.random.default_rng(2024)
