"""E8 — maintenance overheads of offline synopses under updates.

Claim: keeping precomputed samples fresh costs real work — eager refresh
pays a full rescan per batch, threshold refresh amortizes but still
rescans periodically, and only uniform samples enjoy a cheap incremental
(reservoir) path. When updates are frequent relative to queries, the
cumulative maintenance bill erases the query-time savings.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro import Database
from repro.offline import (
    MaintenanceSimulator,
    SampleEntry,
    SynopsisCatalog,
    cumulative_overhead,
)
from repro.sampling.row import srs_sample
from repro.sampling.stratified import stratified_sample
from repro.storage.cost import scan_cost

BATCHES = 10
BATCH_SIZE = 15_000
SAMPLE_ROWS = 8_000


def fresh_db(seed=19, n=150_000):
    rng = np.random.default_rng(seed)
    db = Database()
    db.create_table(
        "stream",
        {
            "value": rng.exponential(10.0, n),
            "key": rng.integers(0, 20, n),
        },
        block_size=1024,
    )
    return db, rng


def register(db, rng, kind):
    catalog = SynopsisCatalog.for_database(db)
    base = db.table("stream")
    if kind == "uniform":
        sample = srs_sample(base, SAMPLE_ROWS, rng)
        entry = SampleEntry(
            table="stream", sample=sample, kind="uniform",
            built_at_rows=base.num_rows,
        )
    else:
        sample = stratified_sample(base, "key", SAMPLE_ROWS, rng=rng)
        entry = SampleEntry(
            table="stream", sample=sample, kind="stratified",
            strata_column="key", built_at_rows=base.num_rows,
        )
    catalog.add_sample(entry)
    return entry


def batch(rng):
    return {
        "value": rng.exponential(10.0, BATCH_SIZE),
        "key": rng.integers(0, 20, BATCH_SIZE),
    }


def test_e08_policy_costs(benchmark):
    def compute():
        rows = []
        for policy, kind in (
            ("eager", "uniform"),
            ("threshold", "uniform"),
            ("reservoir", "uniform"),
            ("never", "uniform"),
            ("threshold", "stratified"),
        ):
            db, rng = fresh_db()
            entry = register(db, rng, kind)
            sim = MaintenanceSimulator(db, policy=policy, seed=3)
            for _ in range(BATCHES):
                sim.apply_batch("stream", batch(rng))
            final_stale = entry.staleness(db)
            rows.append(
                (
                    f"{policy}/{kind}",
                    sim.log.rebuilds,
                    sim.log.rows_rescanned,
                    round(sim.log.cost, 1),
                    round(final_stale, 3),
                )
            )
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e08_policies",
        table(
            ["policy/synopsis", "rebuilds", "rows rescanned", "cost", "final staleness"],
            rows,
        ),
    )
    by = {r[0]: r for r in rows}
    # Shape: eager >> threshold >> reservoir in cost; never is free but stale.
    assert by["eager/uniform"][3] > by["threshold/uniform"][3]
    assert by["threshold/uniform"][3] > by["reservoir/uniform"][3]
    assert by["never/uniform"][3] == 0 and by["never/uniform"][4] > 0.5
    # Stratified samples have no cheap path: threshold cost is rescans.
    assert by["threshold/stratified"][1] >= 1


def test_e08_break_even(benchmark):
    """Net benefit = savings − maintenance, as the query:update ratio varies."""

    def compute():
        db, rng = fresh_db()
        register(db, rng, "uniform")
        sim = MaintenanceSimulator(db, policy="threshold", seed=4)
        for _ in range(BATCHES):
            sim.apply_batch("stream", batch(rng))
        base = db.table("stream")
        per_query_savings = 0.95 * scan_cost(base.num_blocks, base.num_rows).total
        rows = []
        for queries in (1, 5, 20, 100, 1000):
            rows.append(
                (queries, cumulative_overhead(sim.log, queries, per_query_savings))
            )
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e08_break_even",
        table(
            ["queries between update bursts", "net benefit ratio"],
            [(q, f"{r:.2f}") for q, r in rows],
        ),
    )
    # Shape: negative (maintenance dominates) at low query volume,
    # approaching 1 (pure savings) at high volume.
    assert rows[0][1] < 0.5
    assert rows[-1][1] > 0.9
