"""A2 — ablation: pilot sampling rate sensitivity.

Design choice under test: the pilot planner's default pilot rate (1% with
a 30-block floor). A tiny pilot yields loose probabilistic bounds, which
inflate the stage-2 rate (over-sampling); a huge pilot is itself a large
fraction of the exact query. Total cost is therefore non-monotone in the
pilot rate, with a broad sweet spot — the reason the default is a small
rate plus a statistical floor rather than either extreme.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro import Database, ErrorSpec
from repro.online import PilotPlanner
from repro.sql import bind_sql

PILOT_RATES = [0.005, 0.01, 0.05, 0.15, 0.35]
REPEATS = 4


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(35)
    n = 400_000
    db = Database()
    db.create_table(
        "t",
        {"v": rng.gamma(2.0, 20.0, n), "g": rng.integers(0, 4, n)},
        block_size=256,
    )
    return db


def test_a02_pilot_rate_sweep(benchmark, db):
    spec = ErrorSpec(0.005, 0.95)

    def compute():
        rows = []
        for pilot_rate in PILOT_RATES:
            speedups, rates = [], []
            for r in range(REPEATS):
                bound = bind_sql("SELECT SUM(v) AS s FROM t", db)
                res = PilotPlanner(db, pilot_rate=pilot_rate, seed=100 + r).run(
                    bound, spec
                )
                speedups.append(res.speedup)
                rates.append(res.diagnostics["sampling_rate"])
            rows.append(
                (
                    pilot_rate,
                    float(np.mean(rates)),
                    float(np.mean(speedups)),
                )
            )
        return rows

    rows = once(benchmark, compute)
    write_report(
        "a02_pilot_sensitivity",
        table(
            ["pilot rate", "solved stage-2 rate", "mean speedup"],
            [(p, f"{r:.4f}", f"{s:.2f}x") for p, r, s in rows],
        ),
    )
    speedups = [s for _, _, s in rows]
    best = max(speedups)
    # Shape: the largest pilot rate is clearly not optimal (the pilot
    # itself eats the savings)...
    assert speedups[-1] < 0.7 * best
    # ...and every setting still accelerates the query.
    assert min(speedups) > 1.0
    # Bigger pilots yield tighter bounds => (weakly) smaller stage-2 rates.
    assert rows[-1][1] <= rows[0][1] + 1e-9
