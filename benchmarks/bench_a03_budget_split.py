"""A3 — ablation: the cost of the joint (union-bound) error semantics.

Design choice under test: the planners guarantee that *all* cells meet
the spec simultaneously, splitting the failure budget δ across cells
(Boole's inequality). This ablation measures the price: as the group
count grows, the per-cell confidence tightens and the solved sampling
rate rises. The alternative — per-cell-only semantics — would keep the
rate flat but silently deliver joint coverage well below the nominal
level once there are many groups.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro import Database, ErrorSpec
from repro.core.errorspec import z_value
from repro.online import PilotPlanner
from repro.sql import bind_sql

GROUP_COUNTS = [1, 4, 16, 48]


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(36)
    n = 400_000
    db = Database()
    for k in GROUP_COUNTS:
        db.create_table(
            f"t{k}",
            {"v": rng.gamma(2.0, 20.0, n), "g": rng.integers(0, k, n)},
            block_size=256,
        )
    return db


def test_a03_rate_vs_group_count(benchmark, db):
    spec = ErrorSpec(0.05, 0.95)

    def compute():
        rows = []
        for k in GROUP_COUNTS:
            sql = (
                f"SELECT g, SUM(v) AS s FROM t{k} GROUP BY g"
                if k > 1
                else "SELECT SUM(v) AS s FROM t1"
            )
            bound = bind_sql(sql, db)
            cells = max(k, 1)
            per_cell_z = z_value(
                min(1.0 - spec.failure_probability / 2.0 / cells, 1 - 1e-12)
            )
            try:
                res = PilotPlanner(db, seed=200 + k).run(bound, spec)
                rows.append(
                    (k, res.diagnostics["sampling_rate"], per_cell_z, res.speedup)
                )
            except Exception:
                # Enough groups push the required rate past the useful
                # maximum: the planner refuses — the extreme of the trend.
                rows.append((k, 1.0, per_cell_z, None))
        return rows

    rows = once(benchmark, compute)
    write_report(
        "a03_budget_split",
        table(
            ["groups", "solved rate", "per-cell z", "speedup"],
            [
                (k, f"{r:.4f}", f"{z:.2f}", f"{s:.2f}x" if s else "refused")
                for k, r, z, s in rows
            ],
        ),
    )
    # Shape: the union bound makes per-cell z grow with the cell count,
    # and the solved rate grows with it (refusal counts as rate 1.0).
    assert rows[-1][2] > rows[0][2]
    assert rows[-1][1] > rows[0][1]
    # Groups also shrink per-group data (same table size), compounding:
    # the most-grouped query needs several times the 1-group rate.
    assert rows[-1][1] > 3 * rows[0][1]
