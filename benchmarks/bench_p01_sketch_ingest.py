"""P1 — sketch ingestion throughput: vectorized batch vs per-item loop.

The perf claim behind the vectorized kernels: ingesting a column through
one batched ``add`` call must beat the naive one-item-at-a-time loop by
an order of magnitude, because the batch path converts the column to
hashable uint64s once and hashes all sketch rows in a few numpy passes,
while the scalar loop pays Python dispatch + array wrapping + hashing
per item.

The batch path ingests the full column; the scalar loop is timed on a
subsample (it is ~100x slower, and rows/sec is what we compare). Both
paths produce bit-identical sketch state — the property tests in
tests/test_sketches.py pin that; here we only assert throughput.
"""

import time

import numpy as np
import pytest

from common import once, record_metric, table, write_report
from repro.sketches import CountMinSketch, HyperLogLog, KMVSketch

N_BATCH = 1_000_000
N_SCALAR = 8_000  # scalar loop subsample; rows/sec is rate-normalized
REQUIRED_SPEEDUP = 10.0


@pytest.fixture(scope="module")
def keys():
    """String keys — the representative (and hardest) hashing case."""
    rng = np.random.default_rng(41)
    ids = rng.zipf(1.3, N_BATCH) % 250_000
    return np.array([f"user-{i:06d}" for i in ids])


def _make(kind: str):
    if kind == "countmin":
        return CountMinSketch(epsilon=0.005, delta=0.01, seed=7)
    if kind == "hll":
        return HyperLogLog(precision=12, seed=7)
    return KMVSketch(k=1024, seed=7)


def _rows_per_sec_scalar(kind: str, keys: np.ndarray) -> float:
    sketch = _make(kind)
    sub = keys[:N_SCALAR]
    start = time.perf_counter()
    for value in sub:
        sketch.add(value)
    elapsed = time.perf_counter() - start
    return len(sub) / elapsed


def _rows_per_sec_batch(kind: str, keys: np.ndarray) -> float:
    sketch = _make(kind)
    start = time.perf_counter()
    sketch.add(keys)
    elapsed = time.perf_counter() - start
    return len(keys) / elapsed


def test_p01_ingest_throughput(benchmark, keys):
    def compute():
        rows = []
        for kind in ("countmin", "hll", "kmv"):
            scalar = _rows_per_sec_scalar(kind, keys)
            batch = _rows_per_sec_batch(kind, keys)
            speedup = batch / scalar
            rows.append((kind, f"{scalar:,.0f}", f"{batch:,.0f}", f"{speedup:.1f}x"))
            record_metric(
                "bench_p01_sketch_ingest",
                f"{kind}_rows_per_sec",
                {"scalar": scalar, "batch": batch, "speedup": speedup},
            )
        return rows

    rows = once(benchmark, compute)
    write_report(
        "P01_sketch_ingest",
        [
            f"sketch ingestion, {N_BATCH:,} string keys "
            f"(scalar loop sampled at {N_SCALAR:,})",
            "",
            *table(["sketch", "scalar rows/s", "batch rows/s", "speedup"], rows),
        ],
    )
    for kind, _, _, speedup in rows:
        assert float(speedup[:-1]) >= REQUIRED_SPEEDUP, (
            f"{kind}: batch ingest only {speedup} over scalar loop "
            f"(need >= {REQUIRED_SPEEDUP:g}x)"
        )
