"""E5 — COUNT DISTINCT: sampling fails, specialized sketches succeed.

Claim: no row sample supports a reliable distinct-count estimate (the
unseen rows can hide anywhere from 0 to N new values), while HLL/KMV get
within a few percent using kilobytes. Swept over true cardinality and
frequency skew.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro.sketches import HyperLogLog, KMVSketch
from repro.sketches.hyperloglog import sample_based_distinct_estimate
from repro.workloads import distinct_count_table

CARDINALITIES = [1000, 10_000, 100_000]
SKEWS = [0.0, 1.2]
NUM_ROWS = 500_000
SAMPLE_FRACTION = 0.01


def test_e05_distinct_estimators(benchmark):
    def compute():
        rows = []
        for skew in SKEWS:
            for true_d in CARDINALITIES:
                cols = distinct_count_table(
                    NUM_ROWS, num_distinct=true_d, skew=skew, seed=10
                )
                values = cols["user_id"]
                rng = np.random.default_rng(11)
                sample = values[rng.random(NUM_ROWS) < SAMPLE_FRACTION]
                sample_est = sample_based_distinct_estimate(
                    sample, SAMPLE_FRACTION, NUM_ROWS
                )
                hll = HyperLogLog(12, seed=1)
                hll.add(values)
                kmv = KMVSketch(2048, seed=2)
                kmv.add(values)
                rows.append(
                    (
                        skew,
                        true_d,
                        abs(sample_est - true_d) / true_d,
                        abs(hll.estimate() - true_d) / true_d,
                        abs(kmv.estimate() - true_d) / true_d,
                    )
                )
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e05_distinct",
        table(
            ["skew", "true NDV", "1% sample relerr", "HLL relerr", "KMV relerr"],
            [
                (s, d, f"{a:.2%}", f"{b:.2%}", f"{c:.2%}")
                for s, d, a, b, c in rows
            ],
        ),
    )
    # Shape: sketches stay within ~5%; the sampling estimator is off by
    # large factors in at least the high-cardinality settings.
    for _, _, sample_err, hll_err, kmv_err in rows:
        assert hll_err < 0.06
        assert kmv_err < 0.10
    worst_sample = max(r[2] for r in rows)
    assert worst_sample > 0.5  # sampling fails catastrophically somewhere


def test_e05_memory_accuracy_curve(benchmark):
    cols = distinct_count_table(NUM_ROWS, num_distinct=100_000, seed=12)
    values = cols["user_id"]
    true_d = 100_000

    def compute():
        rows = []
        for precision in (8, 10, 12, 14):
            h = HyperLogLog(precision, seed=3)
            h.add(values)
            rows.append(
                (
                    h.memory_bytes(),
                    abs(h.estimate() - true_d) / true_d,
                    h.relative_standard_error,
                )
            )
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e05_memory_curve",
        table(
            ["HLL bytes", "achieved relerr", "theoretical RSE"],
            [(m, f"{e:.3%}", f"{t:.3%}") for m, e, t in rows],
        ),
    )
    # Shape: more registers, tighter estimates (within 4 RSE everywhere).
    for mem, err, rse in rows:
        assert err < 4 * rse
    assert rows[-1][1] < rows[0][1] * 1.5  # generally improving
