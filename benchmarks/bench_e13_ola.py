"""E13 — online aggregation: anytime answers, honest caveats.

Claims: (a) OLA's CI shrinks like 1/√rows-seen, so useful answers appear
after a small fraction of the scan; (b) ripple joins extend this to join
aggregates; (c) coverage at a *fixed* stopping time is nominal, but
adaptive "stop when it first looks good" peeking drops realized coverage
below the nominal level.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro import Table
from repro.online import OnlineAggregator, RippleJoin, peeking_coverage


@pytest.fixture(scope="module")
def skewed_pop():
    rng = np.random.default_rng(29)
    return rng.lognormal(2.0, 1.3, 200_000)


def test_e13_convergence_curve(benchmark, skewed_pop):
    data = Table({"v": skewed_pop})
    truth = float(skewed_pop.sum())

    def compute():
        ola = OnlineAggregator(data, "v", "sum", seed=1)
        rows = []
        for frac in (0.01, 0.02, 0.05, 0.1, 0.25, 0.5):
            snap = ola.snapshot(int(len(skewed_pop) * frac))
            rows.append(
                (
                    frac,
                    snap.relative_half_width,
                    abs(snap.value - truth) / truth,
                )
            )
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e13_convergence",
        table(
            ["fraction seen", "CI half-width", "true error"],
            [(f, f"{w:.3%}", f"{e:.3%}") for f, w, e in rows],
        ),
    )
    # Shape: width shrinks ~1/sqrt(fraction): 25x data => ~5x tighter.
    assert rows[-1][1] < rows[0][1] / 3
    # And the truth sits inside the reported width at every checkpoint.
    for _, width, err in rows:
        assert err < 3 * width


def test_e13_ripple_join_convergence(benchmark, rng):
    n, d = 150_000, 2000
    keys = rng.integers(0, d, n)
    fact = Table({"k": keys, "v": rng.exponential(5.0, n)})
    dim = Table({"k": np.arange(d), "w": rng.random(d)})
    truth = float(np.sum(fact["v"] * dim["w"][keys]))

    def compute():
        ripple = RippleJoin(fact, dim, "k", "k", "v", "w", seed=2)
        rows = []
        for _ in range(6):
            snap = ripple.advance(10_000)
            rows.append(
                (
                    snap.rows_read_left / n,
                    abs(snap.value - truth) / truth,
                    min(snap.relative_half_width, 9.99),
                )
            )
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e13_ripple",
        table(
            ["fraction read", "true error", "reported half-width"],
            [(f"{f:.2f}", f"{e:.3%}", f"{w:.3%}") for f, e, w in rows],
        ),
    )
    assert rows[-1][1] < rows[0][1]
    assert rows[-1][1] < 0.05


def test_e13_fixed_vs_peeking_coverage(benchmark, skewed_pop):
    def compute():
        # Fixed-time coverage at a pre-registered 5k-row stop.
        data = Table({"v": skewed_pop[:50_000]})
        truth = float(data["v"].sum())
        hits = 0
        trials = 80
        for seed in range(trials):
            ola = OnlineAggregator(data, "v", "sum", confidence=0.95, seed=seed)
            snap = ola.snapshot(5000)
            hits += snap.ci_low <= truth <= snap.ci_high
        fixed = hits / trials
        peek = peeking_coverage(
            skewed_pop[:30_000],
            target_relative_error=0.2,
            confidence=0.95,
            num_trials=80,
            batch_size=50,
            seed=30,
        )
        return fixed, peek

    fixed, peek = once(benchmark, compute)
    write_report(
        "e13_peeking",
        table(
            ["stopping rule", "realized coverage (nominal 95%)"],
            [
                ("fixed, pre-registered stop", f"{fixed:.1%}"),
                ("stop at first good-looking CI", f"{peek:.1%}"),
            ],
        ),
    )
    assert fixed >= 0.9
    assert peek < fixed


def test_e13_wander_vs_ripple(benchmark, rng):
    """On sparse (near-key-unique) joins, a ripple join's early prefixes
    contain almost no matching pairs, so it must read a large share of
    both inputs before its CI tightens; wander join completes one joined
    pair per index walk and reaches the same CI after touching a fraction
    of the rows — the regime the wander-join paper targets. (On dense,
    high-fanout joins ripple wins instead: every row it reads joins.)"""
    from repro.online import WanderJoin

    n, d = 150_000, 75_000  # fanout ~2: sparse keys
    keys = rng.integers(0, d, n)
    fact = Table({"k": keys, "v": rng.exponential(5.0, n)})
    dim = Table({"k": np.arange(d), "w": rng.random(d) + 0.5})
    truth = float(np.sum(fact["v"] * dim["w"][keys]))

    def compute():
        wj = WanderJoin(fact, dim, "k", "k", "v", "w", seed=9)
        snap = None
        for snap in wj.run(batch=500, target_relative_error=0.05):
            pass
        wander_rows = snap.walks * 2  # one row from each side per walk
        ripple = RippleJoin(fact, dim, "k", "k", "v", "w", seed=9)
        while True:
            rsnap = ripple.advance(5000)
            rows_read = rsnap.rows_read_left + rsnap.rows_read_right
            if rsnap.relative_half_width <= 0.05 or ripple.is_exhausted:
                break
        return (
            wander_rows,
            abs(snap.value - truth) / truth,
            rows_read,
            abs(rsnap.value - truth) / truth,
        )

    wrows, werr, rrows, rerr = once(benchmark, compute)
    write_report(
        "e13_wander",
        table(
            ["method", "rows touched to reach a 5% CI", "true error at stop"],
            [
                ("wander join (index walks)", wrows, f"{werr:.3%}"),
                ("ripple join (random scans)", rrows, f"{rerr:.3%}"),
            ],
        ),
    )
    assert werr < 0.10 and rerr < 0.10
    assert wrows < rrows / 2  # walks beat scans on sparse joins
