"""Tests for histograms and wavelet synopses."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro import SynopsisError
from repro.histograms import Histogram, equi_depth, equi_width, maxdiff, v_optimal
from repro.wavelets import (
    build_wavelet_synopsis,
    haar_transform,
    inverse_haar,
    reconstruction_error,
)


@pytest.fixture(scope="module")
def uniform_data():
    return np.random.default_rng(1).uniform(0, 100, 50_000)


@pytest.fixture(scope="module")
def skewed_data():
    rng = np.random.default_rng(2)
    return np.concatenate(
        [rng.normal(10, 1, 40_000), rng.normal(500, 5, 500)]
    )


class TestHistogramQueries:
    def test_full_range_count_exact(self, uniform_data):
        h = equi_width(uniform_data, 32)
        assert h.range_count() == pytest.approx(len(uniform_data))

    def test_full_range_sum_exact(self, uniform_data):
        h = equi_depth(uniform_data, 32)
        assert h.range_sum() == pytest.approx(uniform_data.sum())

    def test_half_range_uniform(self, uniform_data):
        h = equi_width(uniform_data, 64)
        est = h.range_count(0, 50)
        truth = np.sum(uniform_data <= 50)
        assert est == pytest.approx(truth, rel=0.02)

    def test_selectivity(self, uniform_data):
        h = equi_depth(uniform_data, 64)
        assert h.selectivity(0, 25) == pytest.approx(0.25, abs=0.02)

    def test_range_avg(self, uniform_data):
        h = equi_depth(uniform_data, 64)
        assert h.range_avg(0, 100) == pytest.approx(uniform_data.mean(), rel=0.01)

    def test_empty_range(self, uniform_data):
        h = equi_width(uniform_data, 16)
        assert h.range_count(200, 300) == 0.0

    def test_memory_entries(self, uniform_data):
        h = equi_width(uniform_data, 32)
        assert h.memory_entries() == 33 + 64

    def test_validation(self):
        with pytest.raises(SynopsisError):
            Histogram(np.array([0.0, 1.0]), np.array([1.0, 2.0]), np.array([1.0]))


class TestBuilders:
    def test_equi_depth_balances_mass(self, skewed_data):
        h = equi_depth(skewed_data, 32)
        nonempty = h.counts[h.counts > 0]
        assert nonempty.max() / max(nonempty.mean(), 1) < 3

    def test_equi_width_starves_on_skew(self, skewed_data):
        h = equi_width(skewed_data, 32)
        # Nearly everything lands in one bucket.
        assert h.counts.max() / len(skewed_data) > 0.9

    def test_maxdiff_concentrates_buckets_where_density_varies(self, skewed_data):
        h = maxdiff(skewed_data, 16)
        # MaxDiff splits at the largest area differences, which for this
        # bimodal data all sit inside the dense mode — it spends its
        # bucket budget where the density actually changes.
        inner = np.sum((h.bounds > 5) & (h.bounds < 15))
        assert inner >= len(h.bounds) * 0.7

    def test_voptimal_beats_equiwidth_on_range_counts(self, skewed_data):
        vo = v_optimal(skewed_data, 16)
        ew = equi_width(skewed_data, 16)
        rng = np.random.default_rng(5)
        vo_err = ew_err = 0.0
        for _ in range(50):
            lo = rng.uniform(0, 20)
            hi = lo + rng.uniform(1, 10)
            truth = float(np.sum((skewed_data >= lo) & (skewed_data <= hi)))
            vo_err += abs(vo.range_count(lo, hi) - truth)
            ew_err += abs(ew.range_count(lo, hi) - truth)
        assert vo_err < ew_err

    def test_voptimal_few_distinct_buckets_per_value(self):
        data = np.repeat([1.0, 5.0, 9.0], [100, 50, 10])
        h = v_optimal(data, 3)
        # Each distinct value gets its own bucket; a range covering the
        # whole first bucket recovers its full mass.
        assert h.range_count(0.5, 5.0) == pytest.approx(100)

    def test_builders_reject_empty(self):
        for builder in (equi_width, equi_depth, maxdiff, v_optimal):
            with pytest.raises(SynopsisError):
                builder(np.array([]), 4)

    def test_constant_column(self):
        h = equi_width(np.full(100, 7.0), 8)
        assert h.range_count(6, 8) == pytest.approx(100)

    @given(hst.integers(2, 40))
    @settings(max_examples=20, deadline=None)
    def test_property_total_mass_conserved(self, buckets):
        data = np.random.default_rng(buckets).normal(0, 1, 2000)
        for builder in (equi_width, equi_depth, maxdiff):
            h = builder(data, buckets)
            assert h.total_rows == pytest.approx(2000)


class TestWavelets:
    def test_transform_round_trip(self, rng):
        data = rng.normal(0, 1, 128)
        assert np.allclose(inverse_haar(haar_transform(data)), data)

    def test_transform_pads_to_power_of_two(self, rng):
        data = rng.normal(0, 1, 100)
        coeffs = haar_transform(data)
        assert len(coeffs) == 128
        assert np.allclose(inverse_haar(coeffs)[:100], data)

    def test_energy_preserved(self, rng):
        data = rng.normal(0, 1, 256)
        coeffs = haar_transform(data)
        assert np.sum(coeffs**2) == pytest.approx(np.sum(data**2))

    def test_full_coefficients_exact(self, uniform_data):
        syn = build_wavelet_synopsis(uniform_data, num_cells=256, keep_coefficients=256)
        assert reconstruction_error(uniform_data, syn) < 1e-9

    def test_error_decreases_with_coefficients(self, skewed_data):
        errors = [
            reconstruction_error(
                skewed_data,
                build_wavelet_synopsis(skewed_data, 512, keep_coefficients=k),
            )
            for k in (8, 32, 128)
        ]
        assert errors[0] >= errors[1] >= errors[2]

    def test_range_sum_counts(self, uniform_data):
        syn = build_wavelet_synopsis(uniform_data, 512, keep_coefficients=128)
        truth = float(np.sum((uniform_data >= 10) & (uniform_data <= 60)))
        assert syn.range_sum(10, 60) == pytest.approx(truth, rel=0.05)

    def test_tiny_space(self, uniform_data):
        syn = build_wavelet_synopsis(uniform_data, 1024, keep_coefficients=64)
        assert syn.memory_entries() < 200

    def test_empty_rejected(self):
        with pytest.raises(SynopsisError):
            build_wavelet_synopsis(np.array([]), 16, 4)
