"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.offline import QueryTemplate
from repro.workloads import (
    SSB_LITE_QUERIES,
    TPCH_LITE_QUERIES,
    WorkloadGenerator,
    WorkloadSpec,
    clustered_values,
    distinct_count_table,
    drift,
    generate_ssb,
    generate_tpch,
    heavy_tailed_table,
    selectivity_table,
    template_overlap,
    uniform_table,
    zipf_group_table,
)


class TestTPCH:
    def test_schema(self, tpch_db):
        assert set(tpch_db.table_names) >= {
            "lineitem", "orders", "customer", "part", "supplier",
            "nation", "region",
        }

    def test_size_ratios(self, tpch_db):
        li = tpch_db.table("lineitem").num_rows
        orders = tpch_db.table("orders").num_rows
        assert 3 <= li / orders <= 5

    def test_referential_integrity(self, tpch_db):
        li = tpch_db.table("lineitem")
        orders = tpch_db.table("orders")
        assert li["l_orderkey"].max() < orders.num_rows
        nation = tpch_db.table("nation")
        region = tpch_db.table("region")
        assert nation["n_regionkey"].max() < region.num_rows

    def test_all_queries_execute(self, tpch_db):
        for name, sql in TPCH_LITE_QUERIES.items():
            result = tpch_db.sql(sql)
            assert result.table.num_rows >= 1, name

    def test_deterministic(self):
        a = generate_tpch(scale=0.1, seed=5)
        b = generate_tpch(scale=0.1, seed=5)
        assert np.array_equal(
            a.table("lineitem")["l_extendedprice"],
            b.table("lineitem")["l_extendedprice"],
        )

    def test_q6_selective_but_nonempty(self, tpch_db):
        res = tpch_db.sql(TPCH_LITE_QUERIES["q6_forecast"])
        assert res.scalar() > 0


class TestSSB:
    def test_schema(self, ssb_db):
        assert set(ssb_db.table_names) == {
            "lineorder", "date_dim", "customer_dim", "supplier_dim", "part_dim",
        }

    def test_all_queries_execute(self, ssb_db):
        for name, sql in SSB_LITE_QUERIES.items():
            result = ssb_db.sql(sql)
            assert result.table.num_rows >= 1, name

    def test_fk_integrity(self, ssb_db):
        lo = ssb_db.table("lineorder")
        assert lo["lo_custkey"].max() < ssb_db.table("customer_dim").num_rows
        assert lo["lo_orderdate"].max() < ssb_db.table("date_dim").num_rows


class TestSyntheticTables:
    def test_uniform_shape(self):
        cols = uniform_table(1000, num_groups=5, seed=1)
        assert len(cols["value"]) == 1000
        assert set(np.unique(cols["group_id"])) <= set(range(5))

    def test_heavy_tail_has_outliers(self):
        cols = heavy_tailed_table(20_000, sigma=2.5, seed=1)
        v = cols["value"]
        assert v.max() > 50 * np.median(v)

    def test_zipf_group_sizes_skewed(self):
        cols = zipf_group_table(50_000, num_groups=200, zipf_s=1.5, seed=1)
        counts = np.bincount(cols["group_id"], minlength=200)
        assert counts.max() > 20 * max(np.median(counts), 1)

    def test_selectivity_column_uniform(self):
        cols = selectivity_table(50_000, seed=1)
        assert np.mean(cols["selector"] < 0.25) == pytest.approx(0.25, abs=0.01)

    def test_clustered_values_layout(self):
        cols = clustered_values(10_000, block_size=100, seed=1)
        v = cols["value"]
        within = np.std(v[:100])
        overall = np.std(v)
        assert within < overall / 5

    def test_distinct_count_exact_truth(self):
        cols = distinct_count_table(30_000, num_distinct=5000, seed=1)
        assert len(np.unique(cols["user_id"])) == 5000


class TestWorkloadDrift:
    def spec(self):
        return WorkloadSpec(
            table="facts",
            column_weights={"a": 8.0, "b": 1.5, "c": 0.5},
            measure="value",
            selector="sel",
        )

    def test_templates_follow_weights(self):
        gen = WorkloadGenerator(self.spec(), seed=1)
        templates = gen.sample_templates(500)
        counts = {}
        for t in templates:
            counts[t.columns[0]] = counts.get(t.columns[0], 0) + 1
        assert counts["a"] > counts["b"] > counts.get("c", 0)

    def test_sql_strings_well_formed(self):
        gen = WorkloadGenerator(self.spec(), seed=2)
        for sql in gen.sample_sql(10):
            assert sql.startswith("SELECT")
            assert "GROUP BY" in sql and "WHERE sel <" in sql

    def test_drift_zero_is_identity(self):
        spec = self.spec()
        drifted = drift(spec, 0.0)
        assert drifted.normalized_weights() == pytest.approx(
            spec.normalized_weights()
        )

    def test_drift_one_inverts_ranking(self):
        spec = self.spec()
        drifted = drift(spec, 1.0)
        w = drifted.normalized_weights()
        assert w["c"] > w["a"]

    def test_drift_reduces_overlap(self):
        spec = self.spec()
        gen_a = WorkloadGenerator(spec, seed=3)
        gen_b = WorkloadGenerator(drift(spec, 1.0), seed=3)
        a = gen_a.sample_templates(50)
        b = gen_b.sample_templates(50)
        assert template_overlap(a, a) == 1.0
        assert template_overlap(a, b) <= 1.0

    def test_drift_validation(self):
        with pytest.raises(ValueError):
            drift(self.spec(), 1.5)

    def test_template_frequency_validation(self):
        with pytest.raises(Exception):
            QueryTemplate("t", ("a",), frequency=-1.0)
