"""Tests for stratified sampling and its allocation policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro import SynopsisError, Table
from repro.audit.acceptance import within_sigma
from repro.sampling.stratified import allocate, group_estimates, stratified_sample
from repro.workloads import zipf_group_table


@pytest.fixture
def skewed(rng):
    cols = zipf_group_table(50_000, num_groups=100, zipf_s=1.5, seed=2)
    return Table(cols, name="z", block_size=512)


class TestAllocation:
    def test_proportional_tracks_sizes(self):
        alloc = allocate([1000, 3000, 6000], 100, "proportional", min_per_stratum=0)
        assert alloc == [10, 30, 60]

    def test_senate_equal(self):
        alloc = allocate([1000, 3000, 6000], 90, "senate", min_per_stratum=0)
        assert alloc == [30, 30, 30]

    def test_congress_protects_small_without_starving_large(self):
        sizes = [10_000, 100, 100]
        prop = allocate(sizes, 300, "proportional", min_per_stratum=0)
        cong = allocate(sizes, 300, "congress", min_per_stratum=0)
        assert cong[1] > prop[1]  # small stratum boosted
        assert cong[0] > cong[1]  # large stratum still biggest

    def test_neyman_follows_variance(self):
        alloc = allocate(
            [1000, 1000], 100, "neyman", stratum_stds=[1.0, 9.0], min_per_stratum=0
        )
        assert alloc[1] == pytest.approx(90, abs=2)

    def test_neyman_requires_stds(self):
        with pytest.raises(SynopsisError):
            allocate([10, 10], 5, "neyman")

    def test_unknown_policy(self):
        with pytest.raises(SynopsisError):
            allocate([10], 5, "dictatorship")

    def test_caps_at_population(self):
        alloc = allocate([5, 1000], 500, "senate")
        assert alloc[0] <= 5

    @given(
        hst.lists(hst.integers(1, 10_000), min_size=1, max_size=20),
        hst.integers(1, 5000),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_never_exceeds_population(self, sizes, total):
        for policy in ("proportional", "senate", "congress"):
            alloc = allocate(sizes, total, policy)
            assert all(0 <= a <= s for a, s in zip(alloc, sizes))


class TestStratifiedSample:
    def test_every_stratum_present(self, skewed, rng):
        s = stratified_sample(skewed, "group_id", 3000, policy="senate", rng=rng)
        assert len(np.unique(s.table["group_id"])) == len(
            np.unique(skewed["group_id"])
        )

    def test_uniform_misses_what_stratified_keeps(self, skewed, rng):
        from repro.sampling.row import srs_sample

        uniform = srs_sample(skewed, 3000, rng)
        stratified = stratified_sample(skewed, "group_id", 3000, "senate", rng=rng)
        n_total = len(np.unique(skewed["group_id"]))
        n_uniform = len(np.unique(uniform.table["group_id"]))
        n_strat = len(np.unique(stratified.table["group_id"]))
        assert n_strat == n_total
        assert n_uniform < n_total  # zipf tail groups get lost

    def test_weights_reflect_strata(self, skewed, rng):
        s = stratified_sample(skewed, "group_id", 2000, "senate", rng=rng)
        # Rare groups sampled fully have weight 1.
        strata = s.params["strata"]
        smallest = min(strata, key=lambda x: x.population)
        assert smallest.weight == pytest.approx(1.0)

    @pytest.mark.statistical
    def test_ht_total_close(self, skewed, rng):
        s = stratified_sample(skewed, "group_id", 5000, "congress", rng=rng)
        assert within_sigma(s.estimate_sum("value"), skewed["value"].sum())

    def test_composite_strata(self, rng):
        t = Table(
            {
                "a": rng.integers(0, 3, 1000),
                "b": rng.integers(0, 2, 1000),
                "v": rng.random(1000),
            }
        )
        s = stratified_sample(t, ["a", "b"], 120, "senate", rng=rng)
        combos = {tuple(x) for x in zip(s.table["a"], s.table["b"])}
        assert len(combos) == 6

    def test_group_estimates_per_group_accuracy(self, skewed, rng):
        s = stratified_sample(skewed, "group_id", 8000, "congress",
                              min_per_stratum=20, rng=rng)
        ests = group_estimates(s, "group_id", "value", "sum")
        errors = []
        for key, est in ests.items():
            truth = skewed["value"][skewed["group_id"] == key].sum()
            if truth > 0:
                errors.append(abs(est.value - truth) / truth)
        # Even tail groups stay reasonable; median well under 20%.
        assert np.median(errors) < 0.2

    def test_group_estimates_count_exact_for_full_strata(self, skewed, rng):
        s = stratified_sample(skewed, "group_id", 2000, "senate", rng=rng)
        ests = group_estimates(s, "group_id", None, "count")
        strata = {x.key: x for x in s.params["strata"]}
        for key, est in ests.items():
            assert est.value == strata[key].population

    def test_group_estimates_bad_agg(self, skewed, rng):
        s = stratified_sample(skewed, "group_id", 1000, rng=rng)
        with pytest.raises(SynopsisError):
            group_estimates(s, "group_id", "value", "median")
