"""Mergeability property tests: shard sketches ≡ whole-table sketch.

Every mergeable structure must satisfy the defining property of
Agarwal et al.'s *Mergeable Summaries*: sketching N disjoint shards
and merging gives the same answer (bit-for-bit for the deterministic
linear structures, to the structure's own guarantee for SpaceSaving)
as sketching the concatenated stream once. This is what makes the
scatter-gather layer's merge step semantics-preserving rather than a
new approximation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.engine.table import Table
from repro.online.ola import OnlineAggregator
from repro.sharding import (
    ShardedTable,
    merge_sketches,
    merge_snapshots,
    merge_weighted_samples,
)
from repro.sketches.bloom import BloomFilter
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.kmv import KMVSketch
from repro.sketches.spacesaving import SpaceSaving

NUM_SHARDS = 5


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(101)
    # zipf-ish skew so heavy hitters exist and duplicates cross shards
    data = rng.zipf(1.5, 20_000) % 5_000
    shards = np.array_split(data, NUM_SHARDS)
    return data, shards


class TestSketchShardEquivalence:
    """Deterministic structures: merged state is bit-for-bit identical."""

    def test_count_min(self, stream):
        data, shards = stream
        whole = CountMinSketch(epsilon=0.005, delta=0.01, seed=3)
        whole.add(data)
        parts = []
        for chunk in shards:
            s = CountMinSketch(epsilon=0.005, delta=0.01, seed=3)
            s.add(chunk)
            parts.append(s)
        merged = merge_sketches(parts)
        assert np.array_equal(merged.counters, whole.counters)
        assert merged.total == whole.total

    def test_count_sketch(self, stream):
        data, shards = stream
        whole = CountSketch(depth=5, width=1024, seed=3)
        whole.add(data)
        parts = []
        for chunk in shards:
            s = CountSketch(depth=5, width=1024, seed=3)
            s.add(chunk)
            parts.append(s)
        merged = merge_sketches(parts)
        assert np.array_equal(merged.counters, whole.counters)
        assert merged.total == whole.total

    def test_hyperloglog(self, stream):
        data, shards = stream
        whole = HyperLogLog(precision=11, seed=3)
        whole.add(data)
        parts = []
        for chunk in shards:
            s = HyperLogLog(precision=11, seed=3)
            s.add(chunk)
            parts.append(s)
        merged = merge_sketches(parts)
        assert np.array_equal(merged.registers, whole.registers)
        assert merged.estimate() == whole.estimate()

    def test_kmv(self, stream):
        data, shards = stream
        whole = KMVSketch(k=256, seed=3)
        whole.add(data)
        parts = []
        for chunk in shards:
            s = KMVSketch(k=256, seed=3)
            s.add(chunk)
            parts.append(s)
        merged = merge_sketches(parts)  # exercises the merge alias
        assert np.array_equal(merged.values, whole.values)
        assert merged.estimate() == whole.estimate()

    def test_bloom(self, stream):
        data, shards = stream
        whole = BloomFilter(expected_items=20_000, fp_rate=0.01, seed=3)
        whole.add(data)
        parts = []
        for chunk in shards:
            s = BloomFilter(expected_items=20_000, fp_rate=0.01, seed=3)
            s.add(chunk)
            parts.append(s)
        merged = merge_sketches(parts)
        assert np.array_equal(merged.bits, whole.bits)
        probe = np.unique(data)[:500]
        assert bool(np.all(merged.contains(probe)))


class TestSpaceSavingMerge:
    """Merged SpaceSaving keeps its guarantees, not its exact state."""

    def test_merge_preserves_count_error_invariant(self, stream):
        data, shards = stream
        true_counts = dict(zip(*np.unique(data, return_counts=True)))
        parts = []
        for chunk in shards:
            s = SpaceSaving(capacity=128)
            s.add(chunk)
            parts.append(s)
        merged = merge_sketches(parts)
        assert merged.total == len(data)
        assert len(merged.counters) <= merged.capacity
        for item, (count, error) in merged.counters.items():
            true = int(true_counts.get(item, 0))
            assert count >= true, "SpaceSaving count must overestimate"
            assert count - error <= true, (
                f"guaranteed count {count - error} exceeds truth {true} "
                f"for {item!r}"
            )

    def test_merge_retains_heavy_hitters(self, stream):
        data, shards = stream
        values, counts = np.unique(data, return_counts=True)
        parts = []
        for chunk in shards:
            s = SpaceSaving(capacity=128)
            s.add(chunk)
            parts.append(s)
        merged = merge_sketches(parts)
        # every item heavier than N/capacity must still be tracked
        threshold = len(data) / merged.capacity
        for item in values[counts > threshold]:
            assert merged.estimate(item.item()) > 0


class TestSnapshotMerge:
    def _shard_snapshots(self, sharded, seed, fraction=0.25):
        snaps = []
        for shard in sharded.shards:
            agg = OnlineAggregator(
                shard.table, "v", agg="sum", confidence=0.95, seed=seed
            )
            rows = max(1, int(shard.stats.rows * fraction))
            snaps.append(agg.snapshot(rows))
        return snaps

    def test_merged_snapshot_adds_values_and_variances(self):
        rng = np.random.default_rng(7)
        table = Table({"v": rng.exponential(5.0, 8_000)}, name="t")
        sharded = ShardedTable.from_table(table, 4)
        snaps = self._shard_snapshots(sharded, seed=0)
        merged = merge_snapshots(snaps, sharded.total_rows)
        assert merged.value == pytest.approx(sum(s.value for s in snaps))
        half2 = sum(((s.ci_high - s.ci_low) / 2.0) ** 2 for s in snaps)
        assert (merged.ci_high - merged.ci_low) / 2.0 == pytest.approx(
            math.sqrt(half2)
        )
        assert merged.rows_seen == sum(s.rows_seen for s in snaps)

    def test_merged_snapshot_ci_is_honest(self):
        rng = np.random.default_rng(17)
        table = Table({"v": rng.lognormal(1.0, 1.0, 8_000)}, name="t")
        sharded = ShardedTable.from_table(table, 4)
        truth = float(np.asarray(table["v"]).sum())
        hits = 0
        trials = 40
        for seed in range(trials):
            merged = merge_snapshots(
                self._shard_snapshots(sharded, seed=seed),
                sharded.total_rows,
            )
            hits += merged.ci_low <= truth <= merged.ci_high
        # nominal 95%; merged CI must not be anti-conservative
        assert hits / trials >= 0.85

    def test_non_finite_shard_half_width_poisons_the_merge(self):
        rng = np.random.default_rng(3)
        table = Table({"v": rng.normal(0.0, 1.0, 2_000)}, name="t")
        sharded = ShardedTable.from_table(table, 4)
        snaps = self._shard_snapshots(sharded, seed=0)
        from repro.online.ola import OLASnapshot

        snaps[2] = OLASnapshot(
            rows_seen=1,
            fraction_seen=0.0,
            value=0.0,
            ci_low=-math.inf,
            ci_high=math.inf,
        )
        merged = merge_snapshots(snaps, sharded.total_rows)
        assert math.isinf(merged.ci_low) and math.isinf(merged.ci_high)


class TestWeightedSampleMerge:
    def test_union_estimates_every_aggregate_honestly(self):
        rng = np.random.default_rng(29)
        table = Table(
            {"v": rng.exponential(10.0, 10_000)}, name="events"
        )
        sharded = ShardedTable.from_table(table, 4)
        from repro.sampling.row import srs_sample

        samples = [
            srs_sample(s.table, 500, np.random.default_rng(1000 + i))
            for i, s in enumerate(sharded.shards)
        ]
        union = merge_weighted_samples(samples)
        assert union.num_rows == 2_000
        assert union.population_rows == 10_000
        v = np.asarray(table["v"])
        for est, truth, label in (
            (union.estimate_sum("v"), float(v.sum()), "sum"),
            (union.estimate_count(), 10_000.0, "count"),
            (union.estimate_avg("v"), float(v.mean()), "avg"),
        ):
            lo, hi = est.ci(0.99)
            assert lo <= truth <= hi, f"{label} CI misses truth"
