"""Tests for block access paths, statistics, and the cost model."""

import numpy as np
import pytest

from repro import Table
from repro.storage import blocks as B
from repro.storage.cost import (
    CostParameters,
    block_sample_cost,
    index_seek_cost,
    row_sample_cost,
    scan_cost,
)
from repro.storage.statistics import (
    compute_column_stats,
    compute_table_stats,
    estimate_equality_selectivity,
    estimate_join_cardinality,
    estimate_range_selectivity,
)


@pytest.fixture
def table():
    return Table(
        {"v": np.arange(100, dtype=np.float64), "g": np.arange(100) % 10},
        name="t",
        block_size=16,
    )


class TestAccessPaths:
    def test_full_scan(self, table):
        out, stats = B.full_scan(table)
        assert out.num_rows == 100
        assert stats.blocks_scanned == table.num_blocks

    def test_row_sample_touches_owning_blocks(self, table):
        out, stats = B.row_sample_scan(table, np.array([0, 1, 50]))
        assert out.num_rows == 3
        assert stats.blocks_scanned == 2  # rows 0,1 share a block; 50 another

    def test_row_sample_empty(self, table):
        out, stats = B.row_sample_scan(table, np.array([], dtype=np.int64))
        assert out.num_rows == 0 and stats.blocks_scanned == 0

    def test_block_sample_returns_whole_blocks(self, table):
        out, stats = B.block_sample_scan(table, [0, 2])
        assert out.num_rows == 32
        assert stats.blocks_scanned == 2
        assert set(np.unique(out[B.BLOCK_ID_COLUMN])) == {0, 2}

    def test_block_sample_dedupes(self, table):
        out, _ = B.block_sample_scan(table, [1, 1, 1])
        assert out.num_rows == 16

    def test_iter_blocks(self, table):
        blocks = list(B.iter_blocks(table))
        assert len(blocks) == table.num_blocks
        assert blocks[0][1].num_rows == 16

    def test_block_row_counts_short_tail(self):
        t = Table({"v": np.arange(10)}, block_size=4)
        assert B.block_row_counts(t).tolist() == [4, 4, 2]

    def test_assign_block_column(self, table):
        out = B.assign_block_column(table)
        assert out["__block_id"][17] == 1

    def test_layouts(self, table):
        clustered = B.clustered_layout(table, "g")
        assert (np.diff(clustered["g"]) >= 0).all()
        shuffled = B.shuffled_layout(table, seed=1)
        assert sorted(shuffled["v"].tolist()) == table["v"].tolist()
        assert shuffled["v"].tolist() != table["v"].tolist()


class TestStatistics:
    def test_column_stats_numeric(self, table):
        stats = compute_column_stats("v", table["v"])
        assert stats.num_distinct == 100
        assert stats.min_value == 0 and stats.max_value == 99
        assert stats.mean == pytest.approx(49.5)

    def test_column_stats_strings(self):
        stats = compute_column_stats("s", np.array(["a", "a", "b"], dtype=object))
        assert not stats.is_numeric
        assert stats.num_distinct == 2
        assert stats.mcv_values[0] == "a"

    def test_skew_ratio(self):
        vals = np.array([1] * 90 + list(range(2, 12)))
        stats = compute_column_stats("x", vals)
        assert stats.skew_ratio > 5

    def test_table_stats(self, table):
        stats = compute_table_stats(table)
        assert stats.num_rows == 100
        assert set(stats.columns) == {"v", "g"}

    def test_range_selectivity_uniform(self, table):
        stats = compute_column_stats("v", table["v"])
        sel = estimate_range_selectivity(stats, 0, 49)
        assert sel == pytest.approx(0.5, abs=0.05)

    def test_range_selectivity_out_of_domain(self, table):
        stats = compute_column_stats("v", table["v"])
        assert estimate_range_selectivity(stats, 1000, 2000) == 0.0

    def test_equality_selectivity_mcv(self):
        vals = np.array([7] * 50 + list(range(50)))
        stats = compute_column_stats("x", vals)
        assert estimate_equality_selectivity(stats, 7) == pytest.approx(0.51, abs=0.02)

    def test_equality_selectivity_non_mcv(self, table):
        stats = compute_column_stats("g", table["g"])
        assert estimate_equality_selectivity(stats, 3) == pytest.approx(0.1)

    def test_join_cardinality(self):
        assert estimate_join_cardinality(1000, 100, 50, 100) == 1000


class TestCostModel:
    def test_block_sampling_cheaper_than_row_sampling(self):
        # The core system-efficiency claim: at equal rates, block sampling
        # reads far fewer blocks than row sampling on block storage.
        blocks, bs = 1000, 1024
        for rate in (0.001, 0.01, 0.05):
            block = block_sample_cost(blocks, bs, rate).total
            row = row_sample_cost(blocks, bs, rate).total
            assert block < row

    def test_row_sampling_approaches_scan(self):
        blocks, bs = 1000, 1024
        row = row_sample_cost(blocks, bs, 0.01).io
        scan = scan_cost(blocks, blocks * bs).io
        assert row > 0.9 * scan  # nearly every block touched

    def test_block_sampling_scales_with_rate(self):
        c1 = block_sample_cost(1000, 1024, 0.01).total
        c2 = block_sample_cost(1000, 1024, 0.1).total
        assert 5 < c2 / c1 < 15

    def test_seek_cost_linear(self):
        assert index_seek_cost(100).total > index_seek_cost(10).total

    def test_cost_estimate_add(self):
        a = scan_cost(10, 100)
        b = scan_cost(5, 50)
        c = a.add(b)
        assert c.total == pytest.approx(a.total + b.total)
        assert c.detail["scan_blocks"] == 15

    def test_custom_parameters(self):
        cheap_io = CostParameters(block_read_cost=1.0)
        assert (
            scan_cost(100, 1000, cheap_io).io
            < scan_cost(100, 1000).io
        )
