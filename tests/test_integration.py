"""End-to-end integration tests over the TPC-H / SSB workloads.

These tie the whole stack together: SQL in, approximate answers with
honest guarantees out, across planners — the "does the system actually
deliver what the paper's taxonomy promises" checks.
"""

import numpy as np
import pytest

from repro import ApproximateResult, Database, ErrorSpec, QueryResult
from repro.workloads import (
    SSB_LITE_QUERIES,
    TPCH_LITE_QUERIES,
    generate_tpch,
)


@pytest.fixture(scope="module")
def big_tpch():
    """Large enough that block sampling is profitable."""
    return generate_tpch(scale=5.0, seed=7, block_size=512)


def exact_lookup(db, sql, key_cols, agg_cols):
    exact = db.sql(sql)
    out = {}
    for row in exact.to_pylist():
        key = tuple(row[k] for k in key_cols)
        out[key] = {a: row[a] for a in agg_cols}
    return out


@pytest.mark.slow
class TestTPCHApproximation:
    def test_every_query_runs_approximately(self, big_tpch):
        for name, sql in TPCH_LITE_QUERIES.items():
            res = big_tpch.sql(sql + " ERROR WITHIN 10% CONFIDENCE 95%", seed=11)
            assert isinstance(res, (ApproximateResult, QueryResult)), name

    def test_q6_error_within_spec(self, big_tpch):
        sql = TPCH_LITE_QUERIES["q6_forecast"]
        truth = big_tpch.sql(sql).scalar()
        for seed in range(6):
            res = big_tpch.sql(sql + " ERROR WITHIN 10% CONFIDENCE 95%", seed=seed)
            if res.is_approximate:
                assert abs(res.scalar() - truth) / truth <= 0.10

    def test_grouped_query_all_groups_within_spec(self, big_tpch):
        sql = TPCH_LITE_QUERIES["q12_shipmode"]
        truth = exact_lookup(big_tpch, sql, ["l_shipmode"], ["line_count", "total"])
        res = big_tpch.sql(sql + " ERROR WITHIN 10% CONFIDENCE 95%", seed=3)
        assert res.is_approximate
        for row in res.to_pylist():
            t = truth[(row["l_shipmode"],)]
            assert row["total"] == pytest.approx(t["total"], rel=0.10)
            assert row["line_count"] == pytest.approx(t["line_count"], rel=0.10)

    def test_no_groups_missed(self, big_tpch):
        sql = TPCH_LITE_QUERIES["q1_pricing"]
        exact_rows = big_tpch.sql(sql).table.num_rows
        res = big_tpch.sql(sql + " ERROR WITHIN 10% CONFIDENCE 95%", seed=4)
        assert res.table.num_rows == exact_rows

    def test_join_query_approximation(self, big_tpch):
        sql = TPCH_LITE_QUERIES["priority_revenue"]
        truth = exact_lookup(big_tpch, sql, ["priority"], ["rev"])
        res = big_tpch.sql(sql + " ERROR WITHIN 10% CONFIDENCE 95%", seed=5)
        for row in res.to_pylist():
            assert row["rev"] == pytest.approx(
                truth[(row["priority"],)]["rev"], rel=0.12
            )

    def test_speedups_material(self, big_tpch):
        """At this scale the pilot should accelerate the scan-bound
        queries by a clear margin in cost-model terms."""
        res = big_tpch.sql(
            "SELECT AVG(l_extendedprice) AS a FROM lineitem "
            "ERROR WITHIN 5% CONFIDENCE 95%",
            seed=6,
        )
        assert res.is_approximate and res.speedup > 3

    def test_repeatability_with_seed(self, big_tpch):
        sql = TPCH_LITE_QUERIES["q6_forecast"] + " ERROR WITHIN 10% CONFIDENCE 95%"
        a = big_tpch.sql(sql, seed=99)
        b = big_tpch.sql(sql, seed=99)
        assert a.scalar() == pytest.approx(b.scalar())


class TestGuaranteeSemantics:
    """The joint-probability semantics of §2.4-style specs, empirically."""

    @pytest.fixture(scope="class")
    def db(self):
        rng = np.random.default_rng(13)
        n = 250_000
        db = Database()
        db.create_table(
            "t",
            {
                "v": rng.gamma(2.0, 30.0, n),
                "g": rng.integers(0, 5, n),
            },
            block_size=512,
        )
        return db

    def test_joint_guarantee_across_cells(self, db):
        spec_err = 0.08
        t = db.table("t")
        truth = {
            g: (t["v"][t["g"] == g].sum(), (t["g"] == g).sum())
            for g in range(5)
        }
        violations = 0
        trials = 10
        for seed in range(trials):
            res = db.sql(
                "SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY g "
                f"ERROR WITHIN {spec_err * 100:.0f}% CONFIDENCE 95%",
                seed=seed,
            )
            if not res.is_approximate:
                continue
            ok = True
            for row in res.to_pylist():
                ts, tc = truth[int(row["g"])]
                if abs(row["s"] - ts) / ts > spec_err:
                    ok = False
                if abs(row["c"] - tc) / tc > spec_err:
                    ok = False
            violations += not ok
        # 95% joint confidence over 10 trials: >1 violation is (very)
        # unlikely given the planner's conservatism.
        assert violations <= 1

    def test_reported_cis_cover_truth(self, db):
        t = db.table("t")
        truth = t["v"].sum()
        res = db.sql(
            "SELECT SUM(v) AS s FROM t ERROR WITHIN 5% CONFIDENCE 95%", seed=21
        )
        cell = res.estimate("s")
        assert cell.ci_low <= truth <= cell.ci_high
