"""Chaos suite: seeded fault sweeps against the resilience layer.

Every test here drives real queries through :class:`ResilientEngine`
while a :class:`FaultInjector` breaks the engine's hazard points —
scans that throw or run slow, cache entries that vanish, sample
metadata that comes back corrupted, whole ladder rungs that die — under
a :class:`ManualClock` deadline, so a given ``(seed, schedule)`` replays
byte-identically.

The invariants swept (the serving layer's contract):

1. **Termination**: every query ends within its remaining deadline plus
   the 10% grace allowance, as measured on the fault clock.
2. **Typed failure**: nothing escapes except result objects and
   :class:`ReproError` subclasses (``QueryRefused`` in particular) —
   never a bare ``KeyError`` from three layers down.
3. **Complete provenance**: every answer and every refusal records what
   happened at each rung it passed, in ladder order.
4. **Honest degradation**: a degraded answer never claims an error
   bound tighter than the user's original request, and its widened CIs
   actually cover (pooled across the sweep).

Run via ``pytest -m chaos``; the CI matrix sets ``CHAOS_SEED`` to pin
each job to one schedule family.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import List, Optional

import numpy as np
import pytest

from repro.core.exceptions import QueryRefused, ReproError
from repro.core.result import ApproximateResult
from repro.engine.table import Table
from repro.engine.database import Database
from repro.offline.catalog import SampleEntry, SynopsisCatalog
from repro.resilience import (
    Deadline,
    FaultInjector,
    FaultSpec,
    LADDER_RUNGS,
    ManualClock,
    ResilientEngine,
    inject,
)
from repro.sampling.row import srs_sample

pytestmark = pytest.mark.chaos

#: CI pins one schedule family per job via CHAOS_SEED; local runs sweep
#: a small matrix so a single ``pytest -m chaos`` covers several.
_seed_env = os.environ.get("CHAOS_SEED")
SEEDS = [int(_seed_env)] if _seed_env else [0, 1, 2]

#: per-fault slow delay; must stay below every deadline's grace window
#: (cooperative checking can overshoot by at most one unchecked delay)
SLOW_DELAY = 0.15

N_ROWS = 6_000
TRIALS_PER_SEED = 6

#: the hazard sites the production code exposes, with the fault kinds
#: that make sense at each
SITE_KINDS = [
    ("executor.scan", "slow"),
    ("executor.scan", "error"),
    ("cache.lookup", "evict"),
    ("sample.metadata", "corrupt"),
    ("catalog.sketch_build", "error"),
    ("ladder.requested", "error"),
    ("ladder.stale_synopsis", "error"),
    ("ladder.cheaper_technique", "error"),
    ("ladder.partial_ola", "error"),
    ("ladder.exact_no_guarantee", "error"),
]

APPROX_SPEC_REL = 0.05

QUERIES = [
    ("SELECT SUM(price) AS s FROM sales ERROR WITHIN 5% CONFIDENCE 95%",
     "s", "sum"),
    ("SELECT AVG(price) AS a FROM sales ERROR WITHIN 5% CONFIDENCE 95%",
     "a", "avg"),
    ("SELECT SUM(price) AS s FROM sales", "s", "exact_sum"),
]


@dataclass
class Outcome:
    """One query's fate under one chaos schedule."""

    kind: str  # "answer" | "refused"
    elapsed: float
    allowed: float  # remaining-at-start + grace
    provenance: List[dict]
    degraded: bool = False
    claimed_rel: Optional[float] = None
    ci_covers: Optional[bool] = None  # None when no CI was reported


def _random_schedule(rng: np.random.Generator, clock: ManualClock) -> FaultInjector:
    """Draw a fault schedule: each site/kind joins with probability 0.4."""
    specs = []
    for site, kind in SITE_KINDS:
        if rng.random() >= 0.4:
            continue
        specs.append(
            FaultSpec(
                site=site,
                kind=kind,
                probability=float(rng.uniform(0.3, 1.0)),
                after=int(rng.integers(0, 2)),
                max_fires=(
                    None if rng.random() < 0.5 else int(rng.integers(1, 4))
                ),
                delay=SLOW_DELAY if kind == "slow" else 0.0,
            )
        )
    return FaultInjector(specs, seed=int(rng.integers(2**31)), clock=clock)


def _build_world(rng: np.random.Generator):
    """A database, its truths, and (sometimes) a stale sample."""
    prices = rng.lognormal(3.0, 1.0, N_ROWS)
    db = Database()
    db.create_table("sales", {"price": prices})
    if rng.random() < 0.5:
        prefix = int(N_ROWS * 0.8)
        sample = srs_sample(
            Table({"price": prices[:prefix]}, name="sales"), 1000, rng
        )
        catalog = SynopsisCatalog(db)
        catalog.add_sample(
            SampleEntry(
                table="sales", sample=sample, kind="uniform",
                built_at_rows=prefix,
            )
        )
    truths = {"sum": float(prices.sum()), "avg": float(prices.mean())}
    return db, truths


def _run_sweep(seed: int) -> List[Outcome]:
    outcomes: List[Outcome] = []
    rng = np.random.default_rng(seed)
    for trial in range(TRIALS_PER_SEED):
        db, truths = _build_world(rng)
        engine = ResilientEngine(db, warn_on_degrade=False)
        clock = ManualClock()
        injector = _random_schedule(rng, clock)
        with inject(injector):
            for sql, alias, truth_key in QUERIES:
                seconds = float(rng.choice([2.0, 5.0]))
                deadline = Deadline(seconds, clock=clock)
                # Simulated queueing delay: some queries start with most
                # (or all) of their deadline already gone.
                clock.advance(float(rng.choice([0.0, 0.6, 1.2])) * seconds)
                remaining = max(deadline.remaining(), 0.0)
                start = clock.now()
                try:
                    result = engine.sql(
                        sql, seed=int(rng.integers(2**31)), deadline=deadline
                    )
                except QueryRefused as exc:
                    outcomes.append(
                        Outcome(
                            kind="refused",
                            elapsed=clock.now() - start,
                            allowed=remaining + deadline.grace_seconds,
                            provenance=exc.provenance,
                        )
                    )
                    continue
                # Invariant 2 is enforced by this except clause's shape:
                # anything that is not a ReproError fails the test here.
                truth = truths[truth_key.replace("exact_", "")]
                covers = None
                claimed = None
                if isinstance(result, ApproximateResult):
                    claimed = result.spec.relative_error
                    cell = result.estimate(alias, 0)
                    if math.isfinite(cell.ci_low) and math.isfinite(cell.ci_high):
                        # A fully-scanned OLA reports the exact answer
                        # with a zero-width CI; don't let summation-order
                        # float noise read as a coverage miss.
                        covers = cell.covers(truth) or math.isclose(
                            cell.value, truth, rel_tol=1e-9
                        )
                outcomes.append(
                    Outcome(
                        kind="answer",
                        elapsed=clock.now() - start,
                        allowed=remaining + deadline.grace_seconds,
                        provenance=result.provenance,
                        degraded=result.is_degraded,
                        claimed_rel=claimed,
                        ci_covers=covers,
                    )
                )
    return outcomes


@pytest.fixture(params=SEEDS, ids=lambda s: f"seed{s}")
def sweep(request):
    return _run_sweep(request.param)


class TestChaosInvariants:
    def test_every_query_terminates_within_deadline_plus_grace(self, sweep):
        late = [
            o for o in sweep if o.elapsed > o.allowed + 1e-9
        ]
        assert not late, (
            f"{len(late)}/{len(sweep)} queries overran their deadline + "
            f"grace: {[(o.elapsed, o.allowed) for o in late]}"
        )

    def test_only_typed_outcomes(self, sweep):
        # _run_sweep only catches QueryRefused (a ReproError); reaching
        # this point at all means nothing untyped escaped. Check the
        # sweep actually exercised both outcome kinds across schedules.
        kinds = {o.kind for o in sweep}
        assert "answer" in kinds
        assert len(sweep) == TRIALS_PER_SEED * len(QUERIES)

    def test_provenance_is_complete_and_ordered(self, sweep):
        for o in sweep:
            assert o.provenance, "an outcome with no provenance at all"
            rungs = [p["rung"] for p in o.provenance]
            # Rung order must follow the ladder (exact-only queries use
            # the final rung alone).
            order = [r for r in LADDER_RUNGS if r in rungs]
            assert rungs == order
            for p in o.provenance:
                assert p["outcome"] in ("ok", "failed", "skipped")
                if p["outcome"] == "failed":
                    assert p["error"], "a failure with no recorded error"
            if o.kind == "answer":
                assert o.provenance[-1]["outcome"] == "ok"
                assert all(
                    p["outcome"] != "ok" for p in o.provenance[:-1]
                )
            else:
                assert all(
                    p["outcome"] in ("failed", "skipped")
                    for p in o.provenance
                )

    def test_degraded_answers_never_tighten_the_contract(self, sweep):
        for o in sweep:
            if o.kind != "answer" or o.claimed_rel is None:
                continue
            if o.degraded:
                assert o.claimed_rel >= APPROX_SPEC_REL - 1e-12, (
                    "a degraded answer claimed a tighter error bound "
                    "than the original request"
                )

    def test_degraded_cis_cover_pooled(self, sweep):
        judged = [
            o for o in sweep
            if o.kind == "answer" and o.degraded and o.ci_covers is not None
        ]
        if len(judged) < 8:
            pytest.skip(
                f"only {len(judged)} degraded CI answers in this schedule "
                "family; coverage pooling needs more"
            )
        coverage = sum(o.ci_covers for o in judged) / len(judged)
        # Widened/fixed-stop CIs claim >= 95%; the pooled check allows
        # small-sample slack but catches any systematic lie.
        assert coverage >= 0.85, (
            f"pooled degraded-CI coverage {coverage:.2f} over "
            f"{len(judged)} answers"
        )


def test_sweep_is_deterministic():
    """The same seed replays the exact same fates and provenance."""
    a = _run_sweep(SEEDS[0])
    b = _run_sweep(SEEDS[0])
    assert [(o.kind, o.elapsed, o.claimed_rel) for o in a] == [
        (o.kind, o.elapsed, o.claimed_rel) for o in b
    ]
    assert [o.provenance for o in a] == [o.provenance for o in b]


# ----------------------------------------------------------------------
# Fault spans: every injected fault is visible in the trace
# ----------------------------------------------------------------------

_FAULT_SPAN_SEEDS = [int(_seed_env)] if _seed_env else [0, 1, 2, 3]


@pytest.mark.obs
@pytest.mark.parametrize("seed", _FAULT_SPAN_SEEDS, ids=lambda s: f"seed{s}")
def test_every_injected_fault_appears_as_a_failed_span(seed):
    """Trace/injector agreement: the injector's ``fired`` log and the
    trace's ``fault`` spans are the same sequence, every span is marked
    failed, and every span carries the schedule's seed — so a trace
    alone identifies the exact chaos schedule that produced it."""
    from repro.obs.schema import validate_span
    from repro.obs.trace import Tracer, trace_scope

    rng = np.random.default_rng(seed)
    for _ in range(TRIALS_PER_SEED):
        db, _ = _build_world(rng)
        engine = ResilientEngine(db, warn_on_degrade=False)
        clock = ManualClock()
        injector = _random_schedule(rng, clock)
        tracer = Tracer(clock=clock)
        with trace_scope(tracer):
            with inject(injector):
                for sql, _, _ in QUERIES:
                    deadline = Deadline(5.0, clock=clock)
                    try:
                        engine.sql(
                            sql,
                            seed=int(rng.integers(2**31)),
                            deadline=deadline,
                        )
                    except QueryRefused:
                        pass
        fault_spans = tracer.find("fault")
        traced = [
            (s.attributes["site"], s.attributes["kind"], s.attributes["arrival"])
            for s in fault_spans
        ]
        assert traced == injector.fired, (
            "trace and injector disagree about what fired"
        )
        for s in fault_spans:
            assert s.status == "error"
            assert s.error == f"injected:{s.attributes['kind']}"
            assert s.attributes["seed"] == injector.seed
            assert validate_span(s.to_dict()) == []
