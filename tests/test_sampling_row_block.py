"""Tests for row- and block-level samplers."""

import numpy as np
import pytest

from repro import Table
from repro.audit.acceptance import coverage_lower_bound
from repro.sampling.base import WeightedSample
from repro.sampling.block import (
    block_bernoulli_sample,
    block_fixed_sample,
    estimate_avg_blockwise,
    estimate_count_blockwise,
    estimate_sum_blockwise,
    naive_vs_clustered_variance,
)
from repro.sampling.row import bernoulli_sample, srs_sample, systematic_sample
from repro.storage.blocks import clustered_layout, shuffled_layout
from repro.workloads import clustered_values


@pytest.fixture
def table(rng):
    n = 50_000
    return Table(
        {"v": rng.exponential(10, n), "g": rng.integers(0, 5, n)},
        name="t",
        block_size=256,
    )


class TestWeightedSample:
    def test_alignment_enforced(self, table):
        with pytest.raises(ValueError):
            WeightedSample(table, np.ones(3), "x", table.num_rows)

    def test_estimate_shortcuts(self, table, rng):
        s = bernoulli_sample(table, 0.05, rng)
        assert s.estimate_sum("v").value == pytest.approx(
            table["v"].sum(), rel=0.15
        )
        assert s.estimate_count().value == pytest.approx(table.num_rows, rel=0.1)
        assert s.estimate_avg("v").value == pytest.approx(
            table["v"].mean(), rel=0.1
        )

    def test_filtered_keeps_weights_valid(self, table, rng):
        s = bernoulli_sample(table, 0.05, rng)
        filt = s.filtered(s.table["g"] == 2)
        truth = table["v"][table["g"] == 2].sum()
        assert filt.estimate_sum("v").value == pytest.approx(truth, rel=0.2)

    def test_sampling_fraction(self, table, rng):
        s = srs_sample(table, 500, rng)
        assert s.sampling_fraction == pytest.approx(0.01)


class TestRowSamplers:
    def test_bernoulli_size_concentrates(self, table, rng):
        s = bernoulli_sample(table, 0.1, rng)
        assert abs(s.num_rows - 5000) < 400

    def test_bernoulli_weights_constant(self, table, rng):
        s = bernoulli_sample(table, 0.2, rng)
        assert np.allclose(s.weights, 5.0)

    def test_bernoulli_rate_validation(self, table):
        with pytest.raises(ValueError):
            bernoulli_sample(table, 0.0)

    def test_srs_exact_size_without_replacement(self, table, rng):
        s = srs_sample(table, 1000, rng)
        assert s.num_rows == 1000

    def test_srs_size_capped(self, rng):
        t = Table({"v": np.arange(10)})
        s = srs_sample(t, 100, rng)
        assert s.num_rows == 10

    def test_srs_negative_size(self, table):
        with pytest.raises(ValueError):
            srs_sample(table, -1)

    def test_systematic_step(self, rng):
        t = Table({"v": np.arange(100)})
        s = systematic_sample(t, 10, rng)
        assert s.num_rows == 10
        diffs = np.diff(np.sort(s.table["v"]))
        assert (diffs == 10).all()

    def test_systematic_unbiased_on_shuffled(self, table, rng):
        s = systematic_sample(table, 20, rng)
        assert s.estimate_sum("v").value == pytest.approx(
            table["v"].sum(), rel=0.2
        )


class TestBlockSamplers:
    def test_bernoulli_blocks_whole(self, table, rng):
        s = block_bernoulli_sample(table, 0.1, rng)
        ids, counts = np.unique(s.table["__block_id"], return_counts=True)
        assert (counts == 256).all() or counts[-1] <= 256

    def test_fixed_blocks_count(self, table, rng):
        s = block_fixed_sample(table, 12, rng)
        assert int(s.params["sampled_blocks"]) == 12

    def test_fixed_blocks_capped(self, rng):
        t = Table({"v": np.arange(100)}, block_size=50)
        s = block_fixed_sample(t, 10, rng)
        assert int(s.params["sampled_blocks"]) == 2

    def test_sum_estimate_shuffled_layout(self, table, rng):
        s = block_bernoulli_sample(table, 0.05, rng)
        est = estimate_sum_blockwise(s, "v")
        assert est.value == pytest.approx(table["v"].sum(), rel=0.1)

    def test_count_estimate(self, table, rng):
        s = block_bernoulli_sample(table, 0.1, rng)
        est = estimate_count_blockwise(s)
        assert est.value == pytest.approx(table.num_rows, rel=0.05)

    def test_avg_estimate(self, table, rng):
        s = block_bernoulli_sample(table, 0.1, rng)
        est = estimate_avg_blockwise(s, "v")
        assert est.value == pytest.approx(table["v"].mean(), rel=0.05)

    def test_clustered_layout_inflates_clustered_variance(self, rng):
        cols = clustered_values(20_000, block_size=200, seed=4)
        t = Table(cols, block_size=200)
        s = block_bernoulli_sample(t, 0.2, rng)
        naive, clustered = naive_vs_clustered_variance(s, "value")
        # On a clustered layout the honest (cluster) variance dwarfs the
        # naive i.i.d. one: the design effect the survey warns about.
        assert clustered > 5 * naive

    @pytest.mark.statistical
    def test_block_sum_coverage_clustered(self, rng):
        """The cluster-correct CI still covers on an adversarial layout."""
        cols = clustered_values(20_000, block_size=200, seed=5)
        t = Table(cols, block_size=200)
        truth = t["value"].sum()
        hits = 0
        for trial in range(60):
            s = block_bernoulli_sample(t, 0.25, np.random.default_rng(trial))
            lo, hi = estimate_sum_blockwise(s, "value").ci(0.95)
            hits += lo <= truth <= hi
        assert hits >= coverage_lower_bound(60, 0.95)

    def test_rate_validation(self, table):
        with pytest.raises(ValueError):
            block_bernoulli_sample(table, 2.0)
        with pytest.raises(ValueError):
            block_fixed_sample(table, -1)
