"""Tests for the extension modules: bi-level sampling, the IDEA-style
reuse cache, the FM sketch, the accuracy audit harness, and the CLI."""

import numpy as np
import pytest

from repro import Database, ErrorSpec, Table, UnsupportedQueryError
from repro.core.accuracy import (
    GuaranteeReport,
    audit_query,
    compare_results,
)
from repro.core.exceptions import MergeError
from repro.online import ReuseCache
from repro.sampling.bilevel import (
    bilevel_sample,
    estimate_count_bilevel,
    estimate_sum_bilevel,
    effective_row_fraction,
    io_cost_fraction,
    variance_tradeoff_curve,
)
from repro.sketches.fm import FlajoletMartin
from repro.workloads import clustered_values


# ----------------------------------------------------------------------
# Bi-level sampling
# ----------------------------------------------------------------------

class TestBilevelSampling:
    @pytest.fixture
    def clustered(self):
        return Table(
            clustered_values(30_000, block_size=256, seed=41), block_size=256
        )

    def test_sample_size_near_product_of_rates(self, clustered, rng):
        s = bilevel_sample(clustered, 0.2, 0.5, rng)
        expected = clustered.num_rows * 0.1
        assert abs(s.num_rows - expected) < expected * 0.5

    def test_weights_inverse_joint_rate(self, clustered, rng):
        s = bilevel_sample(clustered, 0.25, 0.4, rng)
        assert np.allclose(s.weights, 10.0)

    def test_sum_estimate_unbiasedish(self, clustered):
        truth = clustered["value"].sum()
        ests = [
            estimate_sum_bilevel(
                bilevel_sample(clustered, 0.3, 0.5, np.random.default_rng(t)),
                "value",
            ).value
            for t in range(20)
        ]
        assert np.mean(ests) == pytest.approx(truth, rel=0.05)

    def test_count_estimate(self, clustered, rng):
        s = bilevel_sample(clustered, 0.3, 0.5, rng)
        est = estimate_count_bilevel(s)
        assert est.value == pytest.approx(clustered.num_rows, rel=0.2)

    def test_ci_covers(self, clustered):
        truth = clustered["value"].sum()
        hits = 0
        for t in range(30):
            s = bilevel_sample(clustered, 0.3, 0.5, np.random.default_rng(t))
            lo, hi = estimate_sum_bilevel(s, "value").ci(0.95)
            hits += lo <= truth <= hi
        assert hits >= 24

    def test_tradeoff_curve_shape(self, clustered):
        """At a fixed effective row fraction on clustered data, error
        falls as block_rate rises (more, thinner clusters) while I/O
        climbs — the bi-level design space."""
        curve = variance_tradeoff_curve(
            clustered, "value", effective_fraction=0.05, trials=10, seed=7
        )
        assert curve[0][1] < curve[-1][1]  # io grows with block rate
        assert curve[-1][2] < curve[0][2]  # error shrinks with block rate

    def test_helpers(self):
        assert io_cost_fraction(0.2) == 0.2
        assert effective_row_fraction(0.2, 0.5) == pytest.approx(0.1)

    def test_rate_validation(self, clustered):
        with pytest.raises(ValueError):
            bilevel_sample(clustered, 0.0, 0.5)
        with pytest.raises(ValueError):
            bilevel_sample(clustered, 0.5, 1.5)


# ----------------------------------------------------------------------
# IDEA-style reuse cache
# ----------------------------------------------------------------------

class TestReuseCache:
    @pytest.fixture
    def db(self, rng):
        n = 150_000
        db = Database()
        db.create_table(
            "t",
            {
                "v": rng.exponential(5.0, n),
                "g": rng.integers(0, 5, n),
                "sel": rng.random(n),
            },
            block_size=512,
        )
        return db

    def test_second_query_reuses(self, db):
        cache = ReuseCache(db, seed=1)
        spec = ErrorSpec(0.1, 0.9)
        first = cache.sql("SELECT SUM(v) AS s FROM t WHERE sel < 0.5", spec)
        second = cache.sql(
            "SELECT g, AVG(v) AS m FROM t WHERE sel < 0.5 GROUP BY g", spec
        )
        assert first.technique == "quickr"
        assert second.technique == "idea_reuse"
        assert second.diagnostics["reused"] is True
        assert cache.stats.hit_rate == 0.5

    def test_reused_answers_are_accurate(self, db):
        cache = ReuseCache(db, seed=2)
        spec = ErrorSpec(0.1, 0.9)
        cache.sql("SELECT SUM(v) AS s FROM t WHERE sel < 0.5", spec)
        res = cache.sql(
            "SELECT g, SUM(v) AS s FROM t WHERE sel < 0.5 GROUP BY g", spec
        )
        t = db.table("t")
        mask = t["sel"] < 0.5
        for row in res.to_pylist():
            truth = t["v"][mask & (t["g"] == row["g"])].sum()
            assert row["s"] == pytest.approx(truth, rel=0.1)

    def test_different_predicate_misses(self, db):
        cache = ReuseCache(db, seed=3)
        spec = ErrorSpec(0.1, 0.9)
        cache.sql("SELECT SUM(v) AS s FROM t WHERE sel < 0.5", spec)
        other = cache.sql("SELECT SUM(v) AS s FROM t WHERE sel < 0.2", spec)
        assert other.technique == "quickr"
        assert cache.num_entries == 2

    def test_invalidated_on_table_growth(self, db, rng):
        cache = ReuseCache(db, seed=4)
        spec = ErrorSpec(0.1, 0.9)
        cache.sql("SELECT SUM(v) AS s FROM t", spec)
        db.append_rows(
            "t",
            {
                "v": rng.random(10_000),
                "g": rng.integers(0, 5, 10_000),
                "sel": rng.random(10_000),
            },
        )
        res = cache.sql("SELECT COUNT(*) AS c FROM t", spec)
        assert res.technique == "quickr"  # repopulated, not reused
        assert cache.stats.invalidations == 1

    def test_eviction_respects_capacity(self, db):
        cache = ReuseCache(db, max_entries=2, seed=5)
        spec = ErrorSpec(0.2, 0.9)
        for threshold in (0.1, 0.2, 0.3):
            cache.sql(f"SELECT SUM(v) AS s FROM t WHERE sel < {threshold}", spec)
        assert cache.num_entries == 2

    def test_reuse_speedup_is_huge(self, db):
        cache = ReuseCache(db, seed=6)
        spec = ErrorSpec(0.1, 0.9)
        cache.sql("SELECT SUM(v) AS s FROM t", spec)
        res = cache.sql("SELECT AVG(v) AS m FROM t", spec)
        assert res.speedup > 10

    def test_nonlinear_rejected(self, db):
        cache = ReuseCache(db, seed=7)
        with pytest.raises(UnsupportedQueryError):
            cache.sql("SELECT MAX(v) AS m FROM t", ErrorSpec(0.1, 0.9))

    def test_clear(self, db):
        cache = ReuseCache(db, seed=8)
        cache.sql("SELECT SUM(v) AS s FROM t", ErrorSpec(0.1, 0.9))
        cache.clear()
        assert cache.num_entries == 0


# ----------------------------------------------------------------------
# Flajolet–Martin
# ----------------------------------------------------------------------

class TestFlajoletMartin:
    def test_estimate_within_rse(self):
        fm = FlajoletMartin(128, seed=1)
        fm.add(np.arange(50_000))
        rel = abs(fm.estimate() - 50_000) / 50_000
        assert rel < 4 * fm.relative_standard_error

    def test_duplicates_ignored(self):
        fm = FlajoletMartin(64, seed=2)
        fm.add(np.zeros(5_000, dtype=np.int64))
        # Plain PCSA has a well-known small-cardinality floor of ~m/φ
        # (no linear-counting correction — that is HLL's improvement);
        # duplicates must not push the estimate beyond that floor.
        assert fm.estimate() < 2 * 64 / 0.77351

    def test_merge_is_union(self):
        a, b = FlajoletMartin(64, seed=3), FlajoletMartin(64, seed=3)
        a.add(np.arange(0, 30_000))
        b.add(np.arange(15_000, 45_000))
        est = a.merge(b).estimate()
        assert est == pytest.approx(45_000, rel=0.4)

    def test_merge_mismatch(self):
        with pytest.raises(MergeError):
            FlajoletMartin(64, seed=1).merge(FlajoletMartin(32, seed=1))

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            FlajoletMartin(1)


# ----------------------------------------------------------------------
# Accuracy audit harness
# ----------------------------------------------------------------------

class TestAccuracyHarness:
    @pytest.fixture
    def db(self, rng):
        n = 200_000
        db = Database()
        db.create_table(
            "t",
            {"v": rng.gamma(2.0, 10.0, n), "g": rng.integers(0, 4, n)},
            block_size=512,
        )
        return db

    def test_audit_reports_no_violations_for_pilot(self, db):
        report = audit_query(
            db,
            "SELECT g, SUM(v) AS s FROM t GROUP BY g",
            ErrorSpec(0.1, 0.95),
            trials=5,
            seed=1,
            technique="pilot",
        )
        assert report.trials == 5
        assert report.holds
        assert report.max_observed_error() <= 0.1

    def test_audit_counts_exact_fallbacks_as_ok(self, db):
        report = audit_query(
            db,
            "SELECT MAX(v) AS m FROM t",  # advisor falls back to exact
            ErrorSpec(0.05, 0.95),
            trials=2,
            seed=2,
        )
        assert report.violations == 0
        assert all(o.fell_back_to_exact for o in report.outcomes)

    def test_compare_results_detects_missing_groups(self, db):
        exact = db.sql("SELECT g, SUM(v) AS s FROM t GROUP BY g")
        approx = db.sql(
            "SELECT g, SUM(v) AS s FROM t WHERE g < 2 GROUP BY g "
            "ERROR WITHIN 10% CONFIDENCE 90%",
            seed=3,
        )
        outcome = compare_results(approx, exact)
        assert outcome.missing_groups == 2
        assert not outcome.within(ErrorSpec(0.1, 0.9))

    def test_report_violation_rate(self):
        report = GuaranteeReport(spec=ErrorSpec(0.1, 0.9), trials=10, violations=1)
        assert report.violation_rate == 0.1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCLI:
    def test_one_shot_demo_query(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "--demo",
                "tpch",
                "--scale",
                "0.2",
                "SELECT COUNT(*) AS n FROM lineitem",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "n" in out and "[exact]" in out

    def test_approximate_query_reports_technique(self, capsys):
        from repro.__main__ import main

        main(
            [
                "--demo",
                "tpch",
                "--scale",
                "2",
                "--seed",
                "3",
                "SELECT AVG(l_extendedprice) AS a FROM lineitem "
                "ERROR WITHIN 10% CONFIDENCE 95%",
            ]
        )
        out = capsys.readouterr().out
        assert "[approximate]" in out and "technique=" in out

    def test_csv_loading(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "sales.csv"
        path.write_text("price,region\n10,east\n20,west\n30,east\n")
        main([f"--csv", f"sales={path}", "SELECT SUM(price) AS s FROM sales"])
        out = capsys.readouterr().out
        assert "60" in out

    def test_error_surfaced_cleanly(self, capsys):
        from repro.__main__ import main

        main(["--demo", "tpch", "--scale", "0.2", "SELECT FROM lineitem"])
        out = capsys.readouterr().out
        assert "error:" in out

    def test_requires_some_table(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["SELECT 1"])
