"""Tests for all sketch synopses: accuracy bounds, merges, guarantees."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst


from repro.core.exceptions import MergeError
from repro.sketches import (
    AMSSketch,
    BloomFilter,
    CountMinSketch,
    CountSketch,
    GKQuantileSketch,
    HyperLogLog,
    KMVSketch,
    SpaceSaving,
)
from repro.sketches.hyperloglog import sample_based_distinct_estimate


@pytest.fixture(scope="module")
def zipf_stream():
    rng = np.random.default_rng(21)
    vals = rng.zipf(1.4, 300_000)
    return vals[vals < 50_000]


class TestHyperLogLog:
    @pytest.mark.parametrize("true_d", [100, 10_000, 200_000])
    def test_estimate_within_bounds(self, true_d):
        h = HyperLogLog(precision=12, seed=1)
        h.add(np.arange(true_d))
        rel = abs(h.estimate() - true_d) / true_d
        assert rel < 5 * h.relative_standard_error

    def test_duplicates_ignored(self):
        h = HyperLogLog(12)
        h.add(np.zeros(10_000, dtype=np.int64))
        assert h.estimate() == pytest.approx(1, abs=1)

    def test_linear_counting_small_range(self):
        h = HyperLogLog(12)
        h.add(np.arange(50))
        assert h.estimate() == pytest.approx(50, abs=3)

    def test_merge_equals_union(self):
        a, b = HyperLogLog(11, seed=3), HyperLogLog(11, seed=3)
        a.add(np.arange(0, 60_000))
        b.add(np.arange(30_000, 90_000))
        merged = a.merge(b)
        assert merged.estimate() == pytest.approx(90_000, rel=0.05)

    def test_merge_mismatch(self):
        with pytest.raises(MergeError):
            HyperLogLog(10).merge(HyperLogLog(11))

    def test_string_values(self):
        h = HyperLogLog(12)
        h.add(np.array([f"user_{i}" for i in range(5000)], dtype=object))
        assert h.estimate() == pytest.approx(5000, rel=0.1)

    def test_memory_is_registers(self):
        assert HyperLogLog(10).memory_bytes() == 1024

    def test_precision_validation(self):
        with pytest.raises(ValueError):
            HyperLogLog(3)

    def test_sampling_estimator_fails_badly(self):
        """E5's point: a sample-based distinct estimate is wildly off where
        the same-memory HLL is within a few percent."""
        rng = np.random.default_rng(0)
        n, d = 400_000, 80_000
        vals = rng.integers(0, d, n)
        vals[:d] = np.arange(d)
        true_d = len(np.unique(vals))
        sample = vals[rng.random(n) < 0.01]
        sample_est = sample_based_distinct_estimate(sample, 0.01, n)
        h = HyperLogLog(12)
        h.add(vals)
        hll_rel = abs(h.estimate() - true_d) / true_d
        sample_rel = abs(sample_est - true_d) / true_d
        assert hll_rel < 0.05
        assert sample_rel > 5 * hll_rel


class TestCountMin:
    def test_never_underestimates(self, zipf_stream):
        cm = CountMinSketch(epsilon=0.005, delta=0.01, seed=2)
        cm.add(zipf_stream)
        uniq, counts = np.unique(zipf_stream[:2000], return_counts=True)
        true = {u: int(np.sum(zipf_stream == u)) for u in uniq[:50]}
        for u, t in true.items():
            assert cm.query_one(u) >= t

    def test_error_within_bound(self, zipf_stream):
        cm = CountMinSketch(epsilon=0.002, delta=0.01, seed=3)
        cm.add(zipf_stream)
        probes = np.unique(zipf_stream)[:200]
        true_counts = {u: int(np.sum(zipf_stream == u)) for u in probes}
        violations = sum(
            1
            for u, t in true_counts.items()
            if cm.query_one(u) - t > cm.error_bound
        )
        assert violations <= max(1, int(0.02 * len(probes)))

    def test_weighted_adds(self):
        cm = CountMinSketch(0.01, 0.01)
        cm.add(np.array([7, 8]), counts=np.array([100, 5]))
        assert cm.query_one(7) >= 100

    def test_merge(self, zipf_stream):
        a = CountMinSketch(0.01, 0.01, seed=4)
        b = CountMinSketch(0.01, 0.01, seed=4)
        a.add(zipf_stream[:10_000])
        b.add(zipf_stream[10_000:20_000])
        merged = a.merge(b)
        whole = CountMinSketch(0.01, 0.01, seed=4)
        whole.add(zipf_stream[:20_000])
        assert merged.query_one(1) == whole.query_one(1)

    def test_merge_mismatch(self):
        with pytest.raises(MergeError):
            CountMinSketch(0.01, 0.01, seed=1).merge(CountMinSketch(0.01, 0.01, seed=2))

    def test_inner_product_estimates_join_size(self, rng):
        a_vals = rng.integers(0, 100, 20_000)
        b_vals = rng.integers(0, 100, 20_000)
        a = CountMinSketch.with_shape(5, 4096, seed=5)
        b = CountMinSketch.with_shape(5, 4096, seed=5)
        a.add(a_vals)
        b.add(b_vals)
        fa = np.bincount(a_vals, minlength=100)
        fb = np.bincount(b_vals, minlength=100)
        truth = int(np.dot(fa, fb))
        est = a.inner_product(b)
        assert truth <= est <= truth * 1.2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(epsilon=0, delta=0.1)


class TestCountSketch:
    @pytest.mark.slow
    @pytest.mark.statistical
    def test_unbiased_heavy_item(self, zipf_stream):
        ests = []
        truth = int(np.sum(zipf_stream == 1))
        for seed in range(10):
            cs = CountSketch(depth=5, width=4096, seed=seed)
            cs.add(zipf_stream)
            ests.append(cs.query_one(1))
        assert np.mean(ests) == pytest.approx(truth, rel=0.05)

    def test_second_moment(self, zipf_stream):
        cs = CountSketch(depth=7, width=8192, seed=11)
        cs.add(zipf_stream)
        truth = float(np.sum(np.bincount(zipf_stream).astype(np.float64) ** 2))
        assert cs.second_moment() == pytest.approx(truth, rel=0.1)

    def test_merge(self):
        a, b = CountSketch(3, 256, seed=6), CountSketch(3, 256, seed=6)
        a.add(np.array([1, 1, 2]))
        b.add(np.array([1, 3]))
        merged = a.merge(b)
        assert merged.total == 5


class TestKMV:
    def test_estimate(self):
        k = KMVSketch(512, seed=7)
        k.add(np.arange(100_000))
        assert k.estimate() == pytest.approx(100_000, rel=0.15)

    def test_exact_below_k(self):
        k = KMVSketch(1024, seed=7)
        k.add(np.arange(100))
        assert k.estimate() == 100
        assert k.theta == 1.0

    def test_union(self):
        a, b = KMVSketch(512, seed=8), KMVSketch(512, seed=8)
        a.add(np.arange(0, 50_000))
        b.add(np.arange(25_000, 75_000))
        assert a.union(b).estimate() == pytest.approx(75_000, rel=0.15)

    def test_intersection_and_jaccard(self):
        a, b = KMVSketch(1024, seed=9), KMVSketch(1024, seed=9)
        a.add(np.arange(0, 40_000))
        b.add(np.arange(20_000, 60_000))
        assert a.intersection_estimate(b) == pytest.approx(20_000, rel=0.25)
        assert a.jaccard_estimate(b) == pytest.approx(1 / 3, rel=0.3)

    def test_difference(self):
        a, b = KMVSketch(1024, seed=10), KMVSketch(1024, seed=10)
        a.add(np.arange(0, 30_000))
        b.add(np.arange(0, 15_000))
        assert a.difference_estimate(b) == pytest.approx(15_000, rel=0.3)

    def test_seed_mismatch(self):
        with pytest.raises(MergeError):
            KMVSketch(64, seed=1).union(KMVSketch(64, seed=2))


class TestAMS:
    def test_f2(self, rng):
        vals = rng.zipf(1.5, 30_000)
        vals = vals[vals < 1000]
        a = AMSSketch(depth=9, width=96, seed=12)
        a.add(vals)
        truth = float(np.sum(np.bincount(vals).astype(np.float64) ** 2))
        assert a.second_moment() == pytest.approx(truth, rel=0.4)

    def test_join_size(self, rng):
        x = rng.integers(0, 50, 10_000)
        y = rng.integers(0, 50, 10_000)
        a = AMSSketch(depth=9, width=128, seed=13)
        b = AMSSketch(depth=9, width=128, seed=13)
        a.add(x)
        b.add(y)
        truth = float(np.dot(np.bincount(x, minlength=50), np.bincount(y, minlength=50)))
        assert a.join_size(b) == pytest.approx(truth, rel=0.3)

    def test_merge_additive(self):
        a, b = AMSSketch(3, 16, seed=1), AMSSketch(3, 16, seed=1)
        a.add(np.array([1, 2]))
        b.add(np.array([3]))
        assert a.merge(b).total == 3


class TestBloom:
    def test_no_false_negatives(self, rng):
        bf = BloomFilter(5000, 0.01, seed=4)
        members = rng.integers(0, 10**9, 5000)
        bf.add(members)
        assert bf.contains(members).all()

    @given(hst.lists(hst.integers(0, 10**6), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_property_membership(self, items):
        bf = BloomFilter(max(len(items), 10), 0.01)
        bf.add(np.asarray(items))
        assert bf.contains(np.asarray(items)).all()

    def test_fp_rate_near_design(self, rng):
        bf = BloomFilter(10_000, 0.02, seed=5)
        bf.add(np.arange(10_000))
        non_members = np.arange(1_000_000, 1_050_000)
        fp = bf.contains(non_members).mean()
        assert fp < 0.05

    def test_estimated_fp_tracks_fill(self):
        bf = BloomFilter(1000, 0.01)
        assert bf.estimated_fp_rate() == 0.0
        bf.add(np.arange(1000))
        assert 0 < bf.estimated_fp_rate() < 0.05

    def test_merge_union(self):
        a, b = BloomFilter(100, 0.01, seed=6), BloomFilter(100, 0.01, seed=6)
        a.add(np.array([1]))
        b.add(np.array([2]))
        m = a.merge(b)
        assert m.contains_one(1) and m.contains_one(2)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 0.01)
        with pytest.raises(ValueError):
            BloomFilter(10, 1.5)


class TestSpaceSaving:
    def test_heavy_hitters_complete(self, zipf_stream):
        ss = SpaceSaving(200)
        ss.add(zipf_stream[:50_000].tolist())
        found = {k for k, _ in ss.heavy_hitters(0.02)}
        counts = np.bincount(zipf_stream[:50_000])
        true_heavy = set(np.flatnonzero(counts > 0.02 * 50_000).tolist())
        assert true_heavy <= found

    def test_count_bounds(self, zipf_stream):
        ss = SpaceSaving(300)
        stream = zipf_stream[:30_000].tolist()
        ss.add(stream)
        truth = int(np.sum(zipf_stream[:30_000] == 1))
        assert ss.guaranteed_count(1) <= truth <= ss.estimate(1)

    def test_max_error_bound(self, zipf_stream):
        ss = SpaceSaving(100)
        ss.add(zipf_stream[:20_000].tolist())
        assert ss.max_error <= 20_000 / 100 * 3  # loose sanity bound

    def test_capacity_respected(self):
        ss = SpaceSaving(10)
        ss.add(list(range(1000)))
        assert ss.memory_entries() == 10

    def test_top_k_sorted(self, zipf_stream):
        ss = SpaceSaving(50)
        ss.add(zipf_stream[:10_000].tolist())
        top = ss.top_k(5)
        assert top[0][1] >= top[-1][1]
        assert top[0][0] == 1  # zipf's most frequent item


class TestGKQuantiles:
    def test_rank_error_bound(self, rng):
        data = rng.normal(0, 1, 10_000)
        g = GKQuantileSketch(epsilon=0.02)
        g.add(data)
        sorted_data = np.sort(data)
        for phi in (0.1, 0.25, 0.5, 0.75, 0.9):
            est = g.query(phi)
            rank = np.searchsorted(sorted_data, est)
            assert abs(rank - phi * len(data)) <= 3 * 0.02 * len(data)

    def test_space_sublinear(self, rng):
        g = GKQuantileSketch(epsilon=0.01)
        g.add(rng.random(20_000))
        assert g.memory_entries() < 2000

    def test_min_max_exact(self):
        g = GKQuantileSketch(0.05)
        g.add(np.arange(100.0))
        assert g.query(0.0) == 0.0
        assert g.query(1.0) == 99.0

    def test_empty(self):
        assert math.isnan(GKQuantileSketch(0.1).query(0.5))

    def test_phi_validation(self):
        with pytest.raises(ValueError):
            GKQuantileSketch(0.1).query(1.5)

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            GKQuantileSketch(0.7)

    @given(hst.lists(hst.floats(-1e6, 1e6), min_size=10, max_size=400))
    @settings(max_examples=30, deadline=None)
    def test_property_median_within_range(self, values):
        g = GKQuantileSketch(0.1)
        g.add(np.asarray(values))
        med = g.median()
        assert min(values) <= med <= max(values)


# ----------------------------------------------------------------------
# Vectorized-kernel equivalence: every batch kernel must reproduce its
# scalar reference bit-for-bit on random inputs (satellite of the
# vectorization PR; the perf claim lives in bench_p01_sketch_ingest).
# ----------------------------------------------------------------------
from repro.sketches.bloom import BloomFilter as _Bloom  # noqa: E402
from repro.sketches.fm import FlajoletMartin  # noqa: E402
from repro.sketches.hashing import (  # noqa: E402
    hash64,
    hash64_batch,
    hash64_scalar,
)


def _random_values(rng, dtype, n=200):
    if dtype == "int":
        return rng.integers(-(2**62), 2**62, n)
    if dtype == "float":
        vals = rng.normal(0, 1e6, n)
        vals[:3] = [0.0, -0.0, np.inf]
        return vals
    if dtype == "bool":
        return rng.random(n) < 0.5
    if dtype == "str":
        lengths = rng.integers(0, 40, n)
        return np.array(
            ["x" * int(l) + str(rng.integers(0, 10**9)) for l in lengths]
        )
    raise AssertionError(dtype)


class TestVectorizedHashEquivalence:
    @pytest.mark.parametrize("dtype", ["int", "float", "bool", "str"])
    @pytest.mark.parametrize("seed", [0, 1, 12345])
    def test_hash64_matches_scalar_reference(self, dtype, seed):
        rng = np.random.default_rng(hash((dtype, seed)) % 2**32)
        values = _random_values(rng, dtype)
        vectorized = hash64(values, seed=seed)
        expected = np.array(
            [hash64_scalar(v.item(), seed=seed) for v in values],
            dtype=np.uint64,
        )
        assert np.array_equal(vectorized, expected)

    @given(hst.text(max_size=64), hst.integers(0, 2**32))
    @settings(max_examples=60, deadline=None)
    def test_hash64_string_property(self, text, seed):
        arr = np.array([text])
        vec = hash64(arr, seed=seed)[0]
        # Oracle on the value the array actually stores: numpy "U" dtype
        # treats trailing NUL codepoints as padding and strips them.
        assert int(vec) == hash64_scalar(arr[0].item(), seed=seed)

    def test_hash64_batch_rows_match_single_seed_calls(self):
        rng = np.random.default_rng(7)
        values = _random_values(rng, "str", 100)
        seeds = [0, 3, 999, 2**31]
        batch = hash64_batch(values, seeds)
        assert batch.shape == (len(seeds), len(values))
        for i, s in enumerate(seeds):
            assert np.array_equal(batch[i], hash64(values, seed=s))

    def test_object_arrays_hash_by_string_form(self):
        # Object columns are stringified (the seed's semantics): 1 and "1"
        # deliberately collide there, while typed columns keep their own
        # per-dtype digests.
        mixed = np.array([1, "1"], dtype=object)
        h = hash64(mixed, seed=5)
        assert h[0] == h[1] == np.uint64(hash64_scalar("1", seed=5))


@pytest.mark.slow
class TestVectorizedSketchEquivalence:
    """Batch ``add`` must leave identical state to one-item-at-a-time."""

    @pytest.fixture(scope="class")
    def stream(self):
        rng = np.random.default_rng(77)
        ids = rng.zipf(1.4, 3_000) % 500
        return np.array([f"k{i}" for i in ids])

    def _pair(self, factory, stream):
        batch, scalar = factory(), factory()
        batch.add(stream)
        for v in stream:
            scalar.add(v)
        return batch, scalar

    def test_countmin(self, stream):
        batch, scalar = self._pair(
            lambda: CountMinSketch(epsilon=0.01, delta=0.05, seed=3), stream
        )
        assert np.array_equal(batch.counters, scalar.counters)
        assert batch.total == scalar.total
        probe = np.unique(stream)[:50]
        assert np.array_equal(batch.query(probe), scalar.query(probe))

    def test_countsketch(self, stream):
        batch, scalar = self._pair(
            lambda: CountSketch(width=128, depth=5, seed=3), stream
        )
        assert np.array_equal(batch.counters, scalar.counters)

    def test_bloom(self, stream):
        batch, scalar = self._pair(
            lambda: _Bloom(expected_items=2_000, fp_rate=0.01, seed=3), stream
        )
        assert np.array_equal(batch.bits, scalar.bits)
        probe = np.concatenate([np.unique(stream)[:20], np.array(["absent"])])
        assert np.array_equal(batch.contains(probe), scalar.contains(probe))

    def test_hyperloglog(self, stream):
        batch, scalar = self._pair(lambda: HyperLogLog(12, seed=3), stream)
        assert np.array_equal(batch.registers, scalar.registers)

    def test_kmv(self, stream):
        batch, scalar = self._pair(lambda: KMVSketch(k=64, seed=3), stream)
        assert np.array_equal(batch.values, scalar.values)

    def test_flajolet_martin(self, stream):
        batch, scalar = self._pair(
            lambda: FlajoletMartin(32, seed=3), stream
        )
        assert np.array_equal(batch.bitmaps, scalar.bitmaps)

    def test_fm_estimate_matches_scalar_rank_reference(self, stream):
        fm = FlajoletMartin(32, seed=3)
        fm.add(stream)
        mean_r = float(
            np.mean([fm._lowest_unset(b) for b in fm.bitmaps])
        )
        expected = fm.num_bitmaps / 0.77351 * 2.0**mean_r
        assert fm.estimate() == pytest.approx(expected, rel=1e-12)

    def test_spacesaving_batch_keeps_guarantees(self, stream):
        # The batch path pre-aggregates with np.unique (weighted
        # SpaceSaving), so internal state may legitimately differ from the
        # sequential order — the (estimate, guarantee) contract must not.
        ss = SpaceSaving(100)
        ss.add(stream)
        truth = {k: int(c) for k, c in zip(*np.unique(stream, return_counts=True))}
        for key, _ in ss.top_k(10):
            assert ss.guaranteed_count(key) <= truth[key] <= ss.estimate(key)
