"""Tests for offline AQP: catalog, BlinkDB selection, Sample+Seek,
maintenance, and the rewriter."""

import numpy as np
import pytest

from repro import Database, ErrorSpec, InfeasiblePlanError, SynopsisError, Table
from repro.offline import (
    BlinkDBSelector,
    MaintenanceSimulator,
    OfflineRewriter,
    QueryTemplate,
    SampleEntry,
    SynopsisCatalog,
    answer_group_by_sum,
    build_sample_seek,
    build_seek_index,
    cumulative_overhead,
    distribution_precision,
    workload_coverage,
)
from repro.sampling.row import srs_sample
from repro.sampling.stratified import stratified_sample
from repro.sql import bind_sql
from repro.workloads import zipf_group_table


@pytest.fixture
def db(rng):
    db = Database()
    n = 60_000
    db.create_table(
        "events",
        {
            "value": rng.exponential(20, n),
            "city": rng.integers(0, 30, n),
            "device": rng.integers(0, 4, n),
            "selector": rng.random(n),
        },
        block_size=512,
    )
    return db


def add_uniform(db, size=5000, seed=0):
    cat = SynopsisCatalog.for_database(db)
    table = db.table("events")
    entry = SampleEntry(
        table="events",
        sample=srs_sample(table, size, np.random.default_rng(seed)),
        kind="uniform",
        built_at_rows=table.num_rows,
    )
    cat.add_sample(entry)
    return cat, entry


class TestCatalog:
    def test_for_database_idempotent(self, db):
        a = SynopsisCatalog.for_database(db)
        b = SynopsisCatalog.for_database(db)
        assert a is b

    def test_find_uniform_for_ungrouped(self, db):
        cat, entry = add_uniform(db)
        assert cat.find_sample("events") is entry

    def test_uniform_not_offered_for_grouped(self, db):
        cat, _ = add_uniform(db)
        assert cat.find_sample("events", ["city"]) is None

    def test_stratified_subset_coverage(self, db, rng):
        cat = SynopsisCatalog.for_database(db)
        sample = stratified_sample(db.table("events"), ["city", "device"], 4000, rng=rng)
        cat.add_sample(
            SampleEntry(
                table="events",
                sample=sample,
                kind="stratified",
                strata_column=("city", "device"),
                built_at_rows=db.table("events").num_rows,
            )
        )
        assert cat.find_sample("events", ["city"]) is not None
        assert cat.find_sample("events", ["device", "city"]) is not None
        assert cat.find_sample("events", ["selector"]) is None

    def test_staleness_excludes(self, db, rng):
        cat, entry = add_uniform(db)
        db.append_rows(
            "events",
            {
                "value": rng.random(20_000),
                "city": rng.integers(0, 30, 20_000),
                "device": rng.integers(0, 4, 20_000),
                "selector": rng.random(20_000),
            },
        )
        assert entry.staleness(db) > 0.1
        assert cat.find_sample("events") is None
        assert cat.find_sample("events", require_fresh=False) is entry
        assert cat.stale_entries() == [entry]

    def test_storage_accounting(self, db):
        cat, entry = add_uniform(db, size=3000)
        assert cat.storage_rows() == 3000

    def test_empty_sample_rejected(self, db):
        cat = SynopsisCatalog.for_database(db)
        empty = srs_sample(db.table("events"), 0)
        with pytest.raises(SynopsisError):
            cat.add_sample(
                SampleEntry(table="events", sample=empty, kind="uniform")
            )


class TestBlinkDBSelector:
    def workload(self):
        return [
            QueryTemplate("events", ("city",), 10.0),
            QueryTemplate("events", ("device",), 5.0),
            QueryTemplate("events", ("city", "device"), 1.0),
        ]

    def test_selection_respects_budget(self, db):
        sel = BlinkDBSelector(db, budget_rows=5000, rows_per_stratum=100, seed=1)
        chosen, coverage = sel.select(self.workload())
        assert sum(c.storage_rows for c in chosen) <= 5000

    def test_superset_covers_subsets(self, db):
        sel = BlinkDBSelector(db, budget_rows=10**6, rows_per_stratum=50, seed=1)
        chosen, coverage = sel.select(self.workload())
        assert coverage == 1.0
        # The composite (city, device) candidate must appear: nothing else
        # can cover the composite template.
        assert any(set(c.columns) == {"city", "device"} for c in chosen)

    def test_materialize_registers_entries(self, db):
        sel = BlinkDBSelector(db, budget_rows=10**6, rows_per_stratum=50, seed=1)
        entries, coverage = sel.build_for_workload(self.workload())
        cat = SynopsisCatalog.for_database(db)
        assert cat.find_sample("events", ["city"]) is not None

    def test_workload_coverage_function(self, db):
        sel = BlinkDBSelector(db, budget_rows=10**6, rows_per_stratum=50, seed=1)
        sel.build_for_workload([QueryTemplate("events", ("city",), 1.0)])
        cat = SynopsisCatalog.for_database(db)
        covered = workload_coverage(cat, [QueryTemplate("events", ("city",), 1.0)])
        uncovered = workload_coverage(cat, [QueryTemplate("events", ("selector",), 1.0)])
        assert covered == 1.0 and uncovered == 0.0

    def test_zero_budget_rejected(self, db):
        with pytest.raises(SynopsisError):
            BlinkDBSelector(db, budget_rows=0)


class TestSampleSeek:
    @pytest.fixture
    def skewed(self):
        return Table(zipf_group_table(50_000, num_groups=200, zipf_s=1.6, seed=4))

    def test_seek_index_lookup(self, skewed):
        idx = build_seek_index(skewed, "group_id")
        rows = idx.lookup(0)
        assert (skewed["group_id"][rows] == 0).all()
        assert len(idx.lookup(99999)) == 0

    def test_small_groups_answered_exactly(self, skewed, rng):
        syn = build_sample_seek(skewed, "value", "group_id", 5000, rng)
        answers, _ = answer_group_by_sum(syn, skewed)
        truth = {
            k: float(skewed["value"][skewed["group_id"] == k].sum())
            for k in np.unique(skewed["group_id"]).tolist()
        }
        seek_answers = [a for a in answers if a.method == "seek"]
        assert seek_answers, "zipf tail must trigger seeks"
        for a in seek_answers:
            assert a.value == pytest.approx(truth[a.key], rel=1e-9)

    def test_all_groups_answered(self, skewed, rng):
        syn = build_sample_seek(skewed, "value", "group_id", 3000, rng)
        answers, _ = answer_group_by_sum(syn, skewed)
        assert len(answers) == len(np.unique(skewed["group_id"]))

    def test_distribution_precision_small(self, skewed, rng):
        syn = build_sample_seek(skewed, "value", "group_id", 8000, rng)
        answers, _ = answer_group_by_sum(syn, skewed)
        truth = {
            k: float(skewed["value"][skewed["group_id"] == k].sum())
            for k in np.unique(skewed["group_id"]).tolist()
        }
        assert distribution_precision(answers, truth) < 0.05

    def test_large_groups_use_sample(self, skewed, rng):
        syn = build_sample_seek(skewed, "value", "group_id", 8000, rng)
        answers, _ = answer_group_by_sum(syn, skewed)
        head = next(a for a in answers if a.key == 0)  # biggest zipf group
        assert head.method == "sample"


class TestMaintenance:
    def batch(self, rng, size=6000):
        return {
            "value": rng.random(size),
            "city": rng.integers(0, 30, size),
            "device": rng.integers(0, 4, size),
            "selector": rng.random(size),
        }

    def test_eager_rebuilds_every_batch(self, db, rng):
        add_uniform(db)
        sim = MaintenanceSimulator(db, policy="eager", seed=1)
        for _ in range(3):
            sim.apply_batch("events", self.batch(rng))
        assert sim.log.rebuilds == 3
        assert sim.log.cost > 0

    def test_never_costs_nothing_but_goes_stale(self, db, rng):
        _, entry = add_uniform(db)
        sim = MaintenanceSimulator(db, policy="never", seed=1)
        for _ in range(3):
            sim.apply_batch("events", self.batch(rng))
        assert sim.log.cost == 0
        assert entry.staleness(db) > 0.2

    def test_threshold_rebuilds_lazily(self, db, rng):
        add_uniform(db)
        sim = MaintenanceSimulator(db, policy="threshold", seed=1)
        for _ in range(4):
            sim.apply_batch("events", self.batch(rng, 4000))
        assert 1 <= sim.log.rebuilds < 4

    def test_reservoir_cheap_and_fresh(self, db, rng):
        _, entry = add_uniform(db)
        sim = MaintenanceSimulator(db, policy="reservoir", seed=1)
        for _ in range(3):
            sim.apply_batch("events", self.batch(rng))
        assert sim.log.rebuilds == 0
        assert sim.log.incremental_updates == 3
        assert entry.staleness(db) == 0
        # sample still estimates the (grown) total well
        est = entry.sample.estimate_sum("value")
        truth = db.table("events")["value"].sum()
        assert est.value == pytest.approx(truth, rel=0.15)

    def test_policy_validation(self, db):
        with pytest.raises(SynopsisError):
            MaintenanceSimulator(db, policy="yolo")

    def test_cumulative_overhead_sign(self):
        from repro.offline.maintenance import MaintenanceLog

        log = MaintenanceLog(cost=100.0)
        assert cumulative_overhead(log, queries_served=100, per_query_savings=10.0) > 0
        assert cumulative_overhead(log, queries_served=1, per_query_savings=10.0) < 0


class TestOfflineRewriter:
    def test_answers_grouped_query(self, db, rng):
        cat = SynopsisCatalog.for_database(db)
        sample = stratified_sample(
            db.table("events"), "city", 20_000, "congress", min_per_stratum=200, rng=rng
        )
        cat.add_sample(
            SampleEntry(
                table="events",
                sample=sample,
                kind="stratified",
                strata_column="city",
                built_at_rows=db.table("events").num_rows,
            )
        )
        bound = bind_sql(
            "SELECT city, SUM(value) AS total FROM events GROUP BY city", db
        )
        result = OfflineRewriter(db).run(bound, ErrorSpec(0.2, 0.95))
        assert result.technique == "offline_sample"
        exact = db.sql("SELECT city, SUM(value) AS total FROM events GROUP BY city")
        truth = dict(zip(exact.table["city"].tolist(), exact.table["total"].tolist()))
        for row in result.to_pylist():
            assert row["total"] == pytest.approx(truth[row["city"]], rel=0.25)

    def test_refuses_without_sample(self, db):
        bound = bind_sql("SELECT SUM(value) AS s FROM events", db)
        with pytest.raises(InfeasiblePlanError):
            OfflineRewriter(db).run(bound, ErrorSpec(0.1, 0.95))

    def test_refuses_when_sample_too_small(self, db):
        add_uniform(db, size=50)
        bound = bind_sql("SELECT SUM(value) AS s FROM events", db)
        with pytest.raises(InfeasiblePlanError, match="too small"):
            OfflineRewriter(db).run(bound, ErrorSpec(0.01, 0.99))

    def test_where_predicate_applied(self, db):
        add_uniform(db, size=20_000)
        bound = bind_sql(
            "SELECT SUM(value) AS s FROM events WHERE selector < 0.5", db
        )
        result = OfflineRewriter(db).run(bound, ErrorSpec(0.2, 0.95))
        truth = db.table("events")["value"][db.table("events")["selector"] < 0.5].sum()
        assert result.scalar() == pytest.approx(truth, rel=0.1)
