"""Tests for name resolution and plan lowering."""

import numpy as np
import pytest

from repro import BindError, Database, UnsupportedQueryError
from repro.sql.binder import bind_sql


@pytest.fixture
def db():
    db = Database()
    db.create_table(
        "t",
        {
            "a": np.arange(10, dtype=np.int64),
            "v": np.arange(10, dtype=np.float64),
            "g": np.arange(10) % 2,
        },
    )
    db.create_table(
        "u", {"k": np.arange(2, dtype=np.int64), "v": np.array([5.0, 6.0])}
    )
    return db


def rows(db, sql, seed=0):
    table, _ = db.execute(bind_sql(sql, db).plan, seed=seed)
    return table.to_pylist()


class TestResolution:
    def test_unqualified_unique(self, db):
        out = rows(db, "SELECT a FROM t WHERE a < 3")
        assert [r["a"] for r in out] == [0, 1, 2]

    def test_qualified(self, db):
        out = rows(db, "SELECT t.a FROM t WHERE t.a = 4")
        assert len(out) == 1

    def test_unknown_column(self, db):
        with pytest.raises(BindError, match="unknown column"):
            bind_sql("SELECT nope FROM t", db)

    def test_unknown_alias(self, db):
        with pytest.raises(BindError, match="unknown table alias"):
            bind_sql("SELECT z.a FROM t", db)

    def test_ambiguous_column(self, db):
        with pytest.raises(BindError, match="ambiguous"):
            bind_sql("SELECT v FROM t JOIN u ON t.g = u.k", db)

    def test_qualified_disambiguates(self, db):
        out = rows(db, "SELECT u.v AS uv FROM t JOIN u ON t.g = u.k")
        assert len(out) == 10

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(BindError, match="duplicate"):
            bind_sql("SELECT 1 FROM t JOIN t ON t.a = t.a", db)

    def test_self_join_with_aliases(self, db):
        out = rows(
            db,
            "SELECT x.a AS xa, y.a AS ya FROM t x JOIN t y ON x.a = y.a LIMIT 3",
        )
        assert all(r["xa"] == r["ya"] for r in out)

    def test_select_star_single_table(self, db):
        out = rows(db, "SELECT * FROM t LIMIT 1")
        assert set(out[0]) == {"a", "v", "g"}

    def test_missing_from(self, db):
        with pytest.raises(BindError, match="FROM"):
            bind_sql("SELECT 1", db)


class TestAggregateBinding:
    def test_decomposition(self, db):
        bound = bind_sql("SELECT SUM(v) AS s, COUNT(*) AS c FROM t", db)
        assert bound.is_aggregate
        assert len(bound.aggregates) == 2
        assert bound.pre_agg_plan is not None

    def test_duplicate_aggregates_shared(self, db):
        bound = bind_sql("SELECT SUM(v) + SUM(v) AS twice FROM t", db)
        assert len(bound.aggregates) == 1  # SUM(v) registered once

    def test_composite_expression_result(self, db):
        out = rows(db, "SELECT SUM(v) / COUNT(*) AS mean FROM t")
        assert out[0]["mean"] == pytest.approx(4.5)

    def test_group_key_passthrough(self, db):
        out = rows(db, "SELECT g, SUM(v) AS s FROM t GROUP BY g ORDER BY g")
        assert [r["g"] for r in out] == [0, 1]
        assert out[0]["s"] == pytest.approx(0 + 2 + 4 + 6 + 8)

    def test_bare_column_requires_group_by(self, db):
        with pytest.raises(BindError, match="GROUP BY"):
            bind_sql("SELECT a, SUM(v) FROM t", db)

    def test_nested_aggregate_rejected(self, db):
        with pytest.raises(BindError, match="nested"):
            bind_sql("SELECT SUM(AVG(v)) FROM t", db)

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(BindError, match="WHERE"):
            bind_sql("SELECT SUM(v) FROM t WHERE SUM(v) > 3", db)

    def test_aggregate_in_group_by_rejected(self, db):
        with pytest.raises(UnsupportedQueryError):
            bind_sql("SELECT COUNT(*) FROM t GROUP BY SUM(v)", db)

    def test_having_with_hidden_aggregate(self, db):
        out = rows(
            db, "SELECT g FROM t GROUP BY g HAVING COUNT(*) > 10"
        )
        assert out == []

    def test_having_filters(self, db):
        out = rows(
            db,
            "SELECT g, SUM(v) AS s FROM t GROUP BY g HAVING SUM(v) > 21",
        )
        assert len(out) == 1 and out[0]["g"] == 1

    def test_select_star_in_aggregate_rejected(self, db):
        with pytest.raises(BindError, match=r"\*"):
            bind_sql("SELECT *, COUNT(*) FROM t GROUP BY g", db)

    def test_count_distinct_binds(self, db):
        bound = bind_sql("SELECT COUNT(DISTINCT g) AS d FROM t", db)
        assert bound.aggregates[0].func == "count_distinct"

    def test_avg_executes(self, db):
        out = rows(db, "SELECT AVG(v) AS m FROM t")
        assert out[0]["m"] == pytest.approx(4.5)

    def test_case_inside_aggregate(self, db):
        out = rows(
            db,
            "SELECT SUM(CASE WHEN g = 1 THEN v ELSE 0 END) AS odd_sum FROM t",
        )
        assert out[0]["odd_sum"] == pytest.approx(1 + 3 + 5 + 7 + 9)


class TestOrderLimit:
    def test_order_by_alias(self, db):
        out = rows(db, "SELECT g, SUM(v) AS s FROM t GROUP BY g ORDER BY s DESC")
        assert out[0]["g"] == 1

    def test_order_by_position(self, db):
        out = rows(db, "SELECT g, SUM(v) AS s FROM t GROUP BY g ORDER BY 2")
        assert out[0]["g"] == 0

    def test_order_by_position_out_of_range(self, db):
        with pytest.raises(BindError, match="position"):
            bind_sql("SELECT g FROM t GROUP BY g ORDER BY 5", db)

    def test_order_by_unknown(self, db):
        with pytest.raises(BindError, match="ORDER BY"):
            bind_sql("SELECT g FROM t GROUP BY g ORDER BY nope", db)

    def test_limit_recorded(self, db):
        bound = bind_sql("SELECT g FROM t GROUP BY g LIMIT 1", db)
        assert bound.limit == 1


class TestJoinConditions:
    def test_equi_keys_extracted(self, db):
        bound = bind_sql("SELECT COUNT(*) AS c FROM t JOIN u ON t.g = u.k", db)
        assert bound.tables[0].name == "t"

    def test_reversed_equality_ok(self, db):
        out = rows(db, "SELECT COUNT(*) AS c FROM t JOIN u ON u.k = t.g")
        assert out[0]["c"] == 10

    def test_residual_predicate_applied(self, db):
        out = rows(
            db,
            "SELECT COUNT(*) AS c FROM t JOIN u ON t.g = u.k AND u.v > 5.5",
        )
        assert out[0]["c"] == 5  # only k=1 side survives

    def test_non_equi_join_rejected(self, db):
        with pytest.raises(UnsupportedQueryError, match="equi"):
            bind_sql("SELECT COUNT(*) AS c FROM t JOIN u ON t.g < u.k", db)


class TestSampleLowering:
    def test_bernoulli_percent(self, db):
        bound = bind_sql("SELECT a FROM t TABLESAMPLE BERNOULLI (50)", db)
        assert bound.tables[0].sample.method == "bernoulli_rows"
        assert bound.tables[0].sample.rate == pytest.approx(0.5)

    def test_system_percent(self, db):
        bound = bind_sql("SELECT a FROM t TABLESAMPLE SYSTEM (10)", db)
        assert bound.tables[0].sample.method == "system_blocks"

    def test_error_spec_captured(self, db):
        bound = bind_sql(
            "SELECT SUM(v) AS s FROM t ERROR WITHIN 5% CONFIDENCE 95%", db
        )
        assert bound.error_spec.relative_error == pytest.approx(0.05)
