"""The workload-adaptive synopsis tuner.

Covers the whole loop: fingerprint extraction, the bounded workload log
and its demand views, advisor planning under a storage budget, daemon
build/evict cycles (seeded, breaker-wrapped), drift detection, the
stale-tuned-entry handoff to the degradation ladder, and the headline
seeded replay: the tuned catalog must at least double the static
catalog's synopsis hit rate on the two-phase workload — deterministically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, ErrorSpec, QueryOptions
from repro.obs.metrics import get_metrics
from repro.offline.catalog import SynopsisCatalog
from repro.resilience.ladder import ResilientEngine
from repro.tuner import (
    QueryFingerprint,
    SynopsisAdvisor,
    TuningDaemon,
    WorkloadLog,
    install_workload_log,
    observe_query,
    run_tune_replay,
    two_phase_workload,
)
from repro.tuner.replay import make_replay_database, run_replay

pytestmark = pytest.mark.tuner


def _grouped_fp(seg: str, table: str = "events") -> QueryFingerprint:
    return QueryFingerprint(
        table=table,
        group_columns=(seg,),
        agg_family="sum",
        measure_columns=("v",),
        technique="quickr",
    )


def _scalar_fp(table: str = "events") -> QueryFingerprint:
    return QueryFingerprint(
        table=table, agg_family="sum", measure_columns=("v",),
        technique="pilot",
    )


@pytest.fixture
def db() -> Database:
    return make_replay_database(seed=0, rows=10_000)


# ----------------------------------------------------------------------
# Fingerprints and the workload log
# ----------------------------------------------------------------------

class TestWorkloadLog:
    def test_observe_query_records_bare_column_names(self, db):
        log = WorkloadLog()
        previous = install_workload_log(log)
        try:
            db.sql(
                "SELECT seg_a, SUM(v) AS s FROM events GROUP BY seg_a "
                "ERROR WITHIN 30% CONFIDENCE 95%",
                options=QueryOptions(seed=1),
            )
        finally:
            install_workload_log(previous)
        assert len(log) == 1
        fp = log.entries()[0]
        assert fp.table == "events"
        assert fp.group_columns == ("seg_a",)  # qualifier stripped
        assert fp.measure_columns == ("v",)
        assert fp.agg_family == "sum"
        assert fp.requested_error == pytest.approx(0.30)

    def test_no_log_installed_is_a_noop(self, db):
        install_workload_log(None)
        # must not raise, must not record anywhere
        observe_query(None, QueryOptions(), None)

    def test_ring_capacity_forgets_old_demand(self):
        log = WorkloadLog(capacity=4)
        log.extend(_grouped_fp("seg_a") for _ in range(4))
        log.extend(_grouped_fp("seg_b") for _ in range(4))
        assert len(log) == 4
        assert dict(log.group_demand("events")) == {("seg_b",): 4}
        assert log.total_recorded == 8

    def test_demand_views(self):
        log = WorkloadLog()
        log.extend(_grouped_fp("seg_a") for _ in range(3))
        log.extend(_scalar_fp() for _ in range(2))
        assert log.tables() == ["events"]
        assert log.group_demand("events")[("seg_a",)] == 3
        assert log.scalar_demand("events") == 2
        assert log.measure_demand("events")["v"] == 5

    def test_column_churn_detects_phase_shift(self):
        log = WorkloadLog()
        log.extend(_grouped_fp("seg_a") for _ in range(10))
        assert log.column_churn() == 0.0  # same demand in both halves
        log.extend(_grouped_fp("seg_b") for _ in range(10))
        assert log.column_churn() == 1.0  # disjoint halves

    def test_error_miss_rate(self):
        log = WorkloadLog()
        log.record(
            QueryFingerprint(
                table="events", agg_family="sum",
                requested_error=0.1, achieved_error=0.05, spec_met=True,
            )
        )
        log.record(
            QueryFingerprint(
                table="events", agg_family="sum",
                requested_error=0.1, achieved_error=0.4, spec_met=False,
            )
        )
        assert log.error_miss_rate() == pytest.approx(0.5)

    def test_records_round_trip(self):
        log = WorkloadLog()
        log.extend([_grouped_fp("seg_a"), _scalar_fp()])
        clone = WorkloadLog.from_records(log.to_records())
        assert clone.entries() == log.entries()


# ----------------------------------------------------------------------
# Advisor planning
# ----------------------------------------------------------------------

class TestAdvisor:
    def test_candidates_follow_demand(self, db):
        log = WorkloadLog()
        log.extend(_grouped_fp("seg_a") for _ in range(5))
        log.extend(_scalar_fp() for _ in range(5))
        advisor = SynopsisAdvisor(db, log, storage_budget_rows=10_000)
        kinds = {(c.kind, c.columns) for c in advisor.candidates()}
        assert ("stratified", ("seg_a",)) in kinds
        assert ("uniform", ()) in kinds

    def test_no_demand_no_candidates(self, db):
        advisor = SynopsisAdvisor(db, WorkloadLog())
        assert advisor.candidates() == []
        plan = advisor.plan()
        assert plan.builds == [] and plan.evictions == []

    def test_budget_defers_overflow(self, db):
        log = WorkloadLog()
        log.extend(_grouped_fp("seg_a") for _ in range(5))
        log.extend(_grouped_fp("seg_b") for _ in range(3))
        advisor = SynopsisAdvisor(
            db, log, storage_budget_rows=1_200, sample_fraction=0.1
        )
        plan = advisor.plan()  # each candidate wants 1000 rows
        assert len(plan.builds) == 1
        assert plan.builds[0].columns == ("seg_a",)  # higher demand wins
        assert any(c.columns == ("seg_b",) for c in plan.deferred)

    def test_covered_demand_is_not_rebuilt(self, db):
        log = WorkloadLog()
        log.extend(_grouped_fp("seg_a") for _ in range(5))
        daemon = TuningDaemon(db, log, storage_budget_rows=10_000, seed=0)
        first = daemon.run_cycle()
        assert [b["key"] for b in first.built] == ["events:stratified:seg_a"]
        second = daemon.run_cycle()
        assert second.built == []  # fresh covering entry already exists


# ----------------------------------------------------------------------
# Daemon cycles
# ----------------------------------------------------------------------

class TestDaemon:
    def test_cycle_builds_and_registers_tuner_entries(self, db):
        log = WorkloadLog()
        log.extend(_grouped_fp("seg_a") for _ in range(4))
        daemon = TuningDaemon(db, log, storage_budget_rows=10_000, seed=0)
        before = get_metrics().counter_value(
            "tuner_builds", table="events", kind="stratified"
        )
        report = daemon.run_cycle(triggered_by="manual")
        assert [b["key"] for b in report.built] == ["events:stratified:seg_a"]
        catalog = SynopsisCatalog.for_database(db)
        entry = catalog.find_sample("events", group_columns=("seg_a",))
        assert entry is not None and entry.source == "tuner"
        after = get_metrics().counter_value(
            "tuner_builds", table="events", kind="stratified"
        )
        assert after == before + 1

    def test_cold_tuner_entries_are_evicted(self, db):
        log = WorkloadLog(capacity=8)
        log.extend(_grouped_fp("seg_a") for _ in range(8))
        daemon = TuningDaemon(db, log, storage_budget_rows=10_000, seed=0)
        daemon.run_cycle()
        # Phase shift: seg_a demand ages fully out of the ring.
        log.extend(_grouped_fp("seg_b") for _ in range(8))
        report = daemon.run_cycle(triggered_by="drift")
        assert any(
            e["kind"] == "stratified" for e in report.evicted
        ), "cold seg_a entry should be evicted"
        assert [b["key"] for b in report.built] == ["events:stratified:seg_b"]
        catalog = SynopsisCatalog.for_database(db)
        assert catalog.find_sample("events", group_columns=("seg_a",)) is None
        assert catalog.find_sample("events", group_columns=("seg_b",)) is not None

    def test_manual_entries_are_never_evicted(self, db):
        from repro.tuner.replay import _install_static_catalog

        catalog = _install_static_catalog(db, seed=0, sample_rows=500)
        log = WorkloadLog(capacity=8)
        log.extend(_grouped_fp("seg_b") for _ in range(8))
        daemon = TuningDaemon(db, log, storage_budget_rows=10_000, seed=0)
        daemon.run_cycle()
        log.extend(_grouped_fp("seg_a") for _ in range(8))  # seg_b goes cold
        report = daemon.run_cycle()
        assert all(e["kind"] != "uniform" for e in report.evicted)
        assert any(
            e.kind == "uniform" and e.source == "manual"
            for e in catalog.samples
        )

    def test_should_retune_fires_on_churn(self, db):
        log = WorkloadLog()
        log.extend(_grouped_fp("seg_a") for _ in range(6))
        daemon = TuningDaemon(db, log, seed=0, drift_churn_threshold=0.5)
        assert not daemon.should_retune()
        log.extend(_grouped_fp("seg_b") for _ in range(6))
        assert daemon.should_retune()
        assert daemon.maybe_tune() is not None

    def test_build_failures_trip_the_breaker_not_the_cycle(self, db):
        from repro.resilience import FaultInjector, FaultSpec, inject

        log = WorkloadLog()
        log.extend(_grouped_fp("seg_a") for _ in range(4))
        daemon = TuningDaemon(db, log, storage_budget_rows=10_000, seed=0)
        injector = FaultInjector(
            [FaultSpec(site="tuner.build", kind="error")], seed=1
        )
        with inject(injector):
            report = daemon.run_cycle()
        assert report.built == []
        assert [f["key"] for f in report.failed] == [
            "events:stratified:seg_a"
        ]
        # The cycle survives and the next (un-faulted) one succeeds.
        report = daemon.run_cycle()
        assert [b["key"] for b in report.built] == ["events:stratified:seg_a"]


# ----------------------------------------------------------------------
# Stale tuned entries feed the degradation ladder
# ----------------------------------------------------------------------

class TestStaleTunedEntry:
    def test_stale_tuner_entry_served_by_stale_synopsis_rung(self, db):
        log = WorkloadLog()
        log.extend(_scalar_fp() for _ in range(4))
        daemon = TuningDaemon(
            db, log, storage_budget_rows=10_000, sample_fraction=0.2, seed=0
        )
        report = daemon.run_cycle()
        assert any(b["kind"] == "uniform" for b in report.built)
        # The table grows 25% past the entry: staleness > threshold.
        rng = np.random.default_rng(99)
        grow = db.table("events").num_rows // 4
        db.append_rows(
            "events",
            {
                "seg_a": rng.integers(0, 8, grow),
                "seg_b": rng.integers(0, 8, grow),
                "v": rng.exponential(10.0, grow),
                "price": rng.exponential(25.0, grow),
            },
        )
        engine = ResilientEngine(db, warn_on_degrade=False)
        result = engine.sql(
            "SELECT SUM(v) AS s FROM events",
            options=QueryOptions(
                spec=ErrorSpec(relative_error=0.30, confidence=0.95),
                seed=5,
                technique="offline_sample",
            ),
        )
        assert result.is_degraded
        assert result.provenance[-1]["rung"] == "stale_synopsis"
        exact = float(np.asarray(db.table("events")["v"]).sum())
        low, high = result.ci("s", 0)
        assert low <= exact <= high  # widened bound still covers truth


# ----------------------------------------------------------------------
# The headline: seeded two-phase replay, tuned >= 2x static hit rate
# ----------------------------------------------------------------------

@pytest.mark.slow
class TestReplay:
    def test_tuned_catalog_doubles_hit_rate(self):
        doc = run_tune_replay(seed=0)
        assert doc["static_hit_rate"] > 0  # baseline serves the scalars
        assert doc["improvement"] >= 2.0, doc
        assert doc["tuned"]["tuning_cycles"] > 0

    def test_replay_is_deterministic(self):
        first = run_tune_replay(seed=0, rows=12_000, queries_per_phase=40)
        second = run_tune_replay(seed=0, rows=12_000, queries_per_phase=40)
        assert first == second
        assert first["tuned"]["decisions"]  # tuning actually decided things

    def test_replayed_log_reproduces_decisions(self):
        """Same seed + the *serialized* log ⇒ identical catalog decisions."""
        seed = 0
        live_log = WorkloadLog(capacity=120)
        live_log.extend(_grouped_fp("seg_a") for _ in range(10))
        live_log.extend(_scalar_fp() for _ in range(6))

        def first_cycle(log):
            database = make_replay_database(seed, rows=12_000)
            daemon = TuningDaemon(
                database, log, storage_budget_rows=10_000,
                sample_fraction=0.15, seed=seed, min_demand=2,
            )
            return daemon.run_cycle()

        live = first_cycle(live_log)
        replayed_log = WorkloadLog.from_records(
            live_log.to_records(), capacity=120
        )
        replayed = first_cycle(replayed_log)
        assert live.decisions()  # the demand justified at least one build
        assert replayed.decisions() == live.decisions()
        # Identical decisions AND identical sample draws: same seed means
        # the registered entries carry the same row counts.
        assert [b["sample_rows"] for b in replayed.built] == [
            b["sample_rows"] for b in live.built
        ]

    def test_different_seeds_still_clear_the_bar(self):
        doc = run_tune_replay(seed=1)
        assert doc["improvement"] >= 2.0, doc
