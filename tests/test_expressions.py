"""Tests for vectorized expression trees."""

import numpy as np
import pytest

from repro import PlanError, Table
from repro.engine.expressions import (
    Between,
    BinaryOp,
    BooleanOp,
    CaseWhen,
    Column,
    Comparison,
    FunctionCall,
    InList,
    Literal,
    NotOp,
    UnaryOp,
    col,
    combine_conjuncts,
    conjuncts,
    lift,
    transform,
    walk,
)


@pytest.fixture
def table():
    return Table(
        {
            "x": np.array([1.0, 2.0, 3.0, 4.0]),
            "y": np.array([10.0, 0.0, -10.0, 5.0]),
            "s": np.array(["a", "b", "a", "c"], dtype=object),
        }
    )


class TestBasics:
    def test_column(self, table):
        assert Column("x").evaluate(table).tolist() == [1, 2, 3, 4]

    def test_literal_numeric(self, table):
        assert Literal(7).evaluate(table).tolist() == [7] * 4

    def test_literal_string(self, table):
        vals = Literal("z").evaluate(table)
        assert vals.dtype == object and vals[0] == "z"

    def test_lift(self):
        assert isinstance(lift(3), Literal)
        c = col("x")
        assert lift(c) is c

    def test_columns_sets(self):
        expr = (col("x") + col("y")) > 3
        assert expr.columns() == {"x", "y"}


class TestArithmetic:
    def test_add(self, table):
        assert (col("x") + col("y")).evaluate(table).tolist() == [11, 2, -7, 9]

    def test_sub_mul(self, table):
        assert (col("x") * 2 - 1).evaluate(table).tolist() == [1, 3, 5, 7]

    def test_division_by_zero_is_nan(self, table):
        out = (col("x") / col("y")).evaluate(table)
        assert np.isnan(out[1])
        assert out[0] == pytest.approx(0.1)

    def test_mod(self, table):
        out = BinaryOp("%", col("x"), Literal(2)).evaluate(table)
        assert out.tolist() == [1, 0, 1, 0]

    def test_unary_minus(self, table):
        assert (-col("x")).evaluate(table).tolist() == [-1, -2, -3, -4]

    def test_unknown_op_rejected(self):
        with pytest.raises(PlanError):
            BinaryOp("**", col("x"), Literal(2))


class TestPredicates:
    def test_comparisons(self, table):
        assert (col("x") > 2).evaluate(table).tolist() == [False, False, True, True]
        assert (col("x") <= 2).evaluate(table).tolist() == [True, True, False, False]
        assert (col("s") == "a").evaluate(table).tolist() == [True, False, True, False]
        assert (col("s") != "a").evaluate(table).tolist() == [False, True, False, True]

    def test_and_or_not(self, table):
        both = (col("x") > 1) & (col("y") > 0)
        assert both.evaluate(table).tolist() == [False, False, False, True]
        either = (col("x") > 3) | (col("y") > 5)
        assert either.evaluate(table).tolist() == [True, False, False, True]
        assert (~(col("x") > 2)).evaluate(table).tolist() == [True, True, False, False]

    def test_in_list(self, table):
        assert col("s").isin(["a", "c"]).evaluate(table).tolist() == [
            True, False, True, True,
        ]

    def test_in_empty_list(self, table):
        assert InList(col("x"), []).evaluate(table).tolist() == [False] * 4

    def test_between_inclusive(self, table):
        out = col("x").between(2, 3).evaluate(table)
        assert out.tolist() == [False, True, True, False]

    def test_boolean_requires_operands(self):
        with pytest.raises(PlanError):
            BooleanOp("AND", [])


class TestCaseAndFunctions:
    def test_case_when_first_match_wins(self, table):
        expr = CaseWhen(
            [(col("x") > 3, Literal(100)), (col("x") > 1, Literal(10))],
            Literal(0),
        )
        assert expr.evaluate(table).tolist() == [0, 10, 10, 100]

    def test_case_requires_branch(self):
        with pytest.raises(PlanError):
            CaseWhen([], Literal(0))

    def test_abs_sqrt(self, table):
        assert FunctionCall("abs", [col("y")]).evaluate(table).tolist() == [10, 0, 10, 5]
        out = FunctionCall("sqrt", [col("x")]).evaluate(table)
        assert out[3] == pytest.approx(2.0)

    def test_string_functions(self, table):
        up = FunctionCall("upper", [col("s")]).evaluate(table)
        assert up.tolist() == ["A", "B", "A", "C"]
        ln = FunctionCall("length", [col("s")]).evaluate(table)
        assert ln.tolist() == [1, 1, 1, 1]

    def test_unknown_function(self):
        with pytest.raises(PlanError, match="unknown function"):
            FunctionCall("frobnicate", [col("x")])


class TestTreeUtilities:
    def test_walk_visits_all(self):
        expr = (col("x") + 1) > (col("y") * 2)
        kinds = [type(n).__name__ for n in walk(expr)]
        assert kinds[0] == "Comparison"
        assert "Column" in kinds and "Literal" in kinds

    def test_transform_replaces_literals(self, table):
        expr = col("x") + 1

        def double(node):
            if isinstance(node, Literal):
                return Literal(node.value * 2)
            return None

        out = transform(expr, double)
        assert out.evaluate(table).tolist() == [3, 4, 5, 6]

    def test_transform_identity_preserves_node(self):
        expr = col("x") + 1
        assert transform(expr, lambda n: None) is expr

    def test_conjuncts_flatten(self):
        pred = (col("a") > 1) & (col("b") > 2) & (col("c") > 3)
        parts = conjuncts(pred)
        assert len(parts) == 3

    def test_conjuncts_none(self):
        assert conjuncts(None) == []

    def test_combine_round_trip(self, table):
        pred = (col("x") > 1) & (col("y") > 0)
        rebuilt = combine_conjuncts(conjuncts(pred))
        assert rebuilt.evaluate(table).tolist() == pred.evaluate(table).tolist()

    def test_combine_empty(self):
        assert combine_conjuncts([]) is None

    def test_combine_single(self):
        p = col("x") > 1
        assert combine_conjuncts([p]) is p
