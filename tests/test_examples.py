"""Smoke tests: the example scripts run end to end.

Each example is imported and executed with its data sizes patched down so
the whole file stays fast; the point is that the public API surface the
examples exercise keeps working, not the examples' timing.
"""

import importlib
import sys

import pytest


def load(name):
    sys.path.insert(0, "examples")
    try:
        module = importlib.import_module(name)
        importlib.reload(module)
        return module
    finally:
        sys.path.pop(0)


class TestExamples:
    def test_quickstart(self, capsys, monkeypatch):
        mod = load("quickstart")
        monkeypatch.setattr(mod, "NUM_ROWS", 60_000)
        mod.main()
        out = capsys.readouterr().out
        assert "exact execution" in out
        assert "no-silver-bullet matrix" in out

    def test_dashboard_analytics(self, capsys, monkeypatch):
        mod = load("dashboard_analytics")
        monkeypatch.setattr(mod, "NUM_ROWS", 80_000)
        mod.main()
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "drift=1.00" in out

    @pytest.mark.slow
    def test_telemetry_sketches(self, capsys, monkeypatch):
        mod = load("telemetry_sketches")
        monkeypatch.setattr(mod, "EVENTS", 100_000)
        monkeypatch.setattr(mod, "USERS", 20_000)
        mod.main()
        out = capsys.readouterr().out
        assert "distinct users" in out
        assert "sampling fails" in out

    @pytest.mark.slow
    def test_progressive_results(self, capsys):
        mod = load("progressive_results")
        mod.main()
        out = capsys.readouterr().out
        assert "online aggregation" in out
        assert "peeking" in out

    def test_resilience_demo(self, capsys, monkeypatch):
        mod = load("resilience_demo")
        monkeypatch.setattr(mod, "NUM_ROWS", 50_000)
        mod.main()
        out = capsys.readouterr().out
        assert "stale sample, widened bars" in out
        assert "partial-OLA snapshot" in out
        assert "typed refusal with provenance" in out
        assert "every rung of the degradation ladder failed" in out

    def test_sharding_demo(self, capsys, monkeypatch):
        mod = load("sharding_demo")
        monkeypatch.setattr(mod, "NUM_ROWS", 40_000)
        monkeypatch.setattr(mod, "BLOCK_SIZE", 1_024)
        mod.main()
        out = capsys.readouterr().out
        assert "merged == single-table" in out
        assert "served_hedged" in out
        assert "widened bars still cover" in out
        assert "covers truth: True  degraded=True" in out
        assert "typed refusal with provenance" in out

    def test_adhoc_exploration_importable(self):
        # The ad-hoc session builds a scale-5 TPC-H; too heavy for unit
        # tests, but its SESSION queries must at least parse and bind.
        from repro.sql.parser import parse_sql

        mod = load("adhoc_exploration")
        for _, sql in mod.SESSION:
            parse_sql(sql + " ERROR WITHIN 5% CONFIDENCE 95%")
