"""Public-API snapshot: the golden guard against accidental breakage.

``tests/golden/public_api.json`` records the surface a user programs
against: the top-level exports, the unified :class:`QueryOptions` field
list, the result-envelope key set, the tuner package's exports, and the
exact signatures of every ``sql()`` front door. Any drift fails here —
an API change must be deliberate: regenerate with ``REPRO_REGOLD=1``
and review the diff.
"""

from __future__ import annotations

import inspect
import json
import os
from pathlib import Path

import repro
import repro.tuner
from repro.core.options import QUERY_OPTION_FIELDS
from repro.core.result import ENVELOPE_KEYS
from repro.core.session import AQPEngine
from repro.engine.database import Database
from repro.resilience.ladder import ResilientEngine
from repro.serving.frontend import ServingFrontend
from repro.sharding.executor import ScatterGatherExecutor

GOLDEN_DIR = Path(__file__).parent / "golden"
REGOLD = os.environ.get("REPRO_REGOLD") == "1"

#: every public query entry point whose signature is under contract
ENTRY_POINTS = {
    "Database.sql": Database.sql,
    "AQPEngine.sql": AQPEngine.sql,
    "ResilientEngine.sql": ResilientEngine.sql,
    "ScatterGatherExecutor.sql": ScatterGatherExecutor.sql,
    "ServingFrontend.sql": ServingFrontend.sql,
    "ServingFrontend.submit": ServingFrontend.submit,
}


def current_api() -> dict:
    return {
        "repro_all": sorted(repro.__all__),
        "tuner_all": sorted(repro.tuner.__all__),
        "query_option_fields": list(QUERY_OPTION_FIELDS),
        "envelope_keys": list(ENVELOPE_KEYS),
        "entry_point_signatures": {
            name: str(inspect.signature(fn))
            for name, fn in ENTRY_POINTS.items()
        },
    }


def test_public_api_golden_matches_code():
    api = current_api()
    path = GOLDEN_DIR / "public_api.json"
    if REGOLD:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(api, indent=2, sort_keys=True) + "\n")
    committed = json.loads(path.read_text())
    assert committed == api, (
        "public API drifted from tests/golden/public_api.json — breaking "
        "users must be deliberate; regenerate with REPRO_REGOLD=1 and "
        "review the diff"
    )


def test_every_entry_point_signature_carries_options():
    for name, fn in ENTRY_POINTS.items():
        params = inspect.signature(fn).parameters
        assert "options" in params, name
        assert params["options"].default is None, name
