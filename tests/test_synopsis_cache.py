"""Tests for the content-addressed synopsis cache."""

import numpy as np
import pytest

from repro import Database, Table
from repro.offline import answer_group_by_sum, build_sample_seek
from repro.offline.blinkdb import BlinkDBSelector, QueryTemplate
from repro.storage.synopsis_cache import (
    SynopsisCache,
    get_global_cache,
    set_global_cache,
)


@pytest.fixture
def fresh_global_cache():
    """Install a fresh global cache for the test; restore afterwards."""
    cache = SynopsisCache()
    set_global_cache(cache)
    yield cache
    set_global_cache(None)


def grouped_table(n=5_000, groups=40, seed=11, name="t"):
    rng = np.random.default_rng(seed)
    return Table(
        {"group_id": rng.integers(0, groups, n), "value": rng.exponential(3, n)},
        name=name,
    )


class TestAccounting:
    def test_miss_then_hit(self):
        cache = SynopsisCache()
        t = grouped_table()
        key = cache.make_key(t, kind="demo", columns=("value",))
        assert cache.get(key) is None
        cache.put(key, "synopsis", nbytes=10)
        assert cache.get(key) == "synopsis"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_get_or_build_builds_once(self):
        cache = SynopsisCache()
        t = grouped_table()
        calls = []

        def builder():
            calls.append(1)
            return object()

        first = cache.get_or_build(t, kind="demo", builder=builder, nbytes=8)
        second = cache.get_or_build(t, kind="demo", builder=builder, nbytes=8)
        assert first is second
        assert len(calls) == 1
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_key_is_content_addressed(self):
        cache = SynopsisCache()
        a = grouped_table(seed=1, name="same")
        b = grouped_table(seed=2, name="same")  # same name, other content
        cache.put(cache.make_key(a, kind="demo"), "for-a", nbytes=1)
        assert cache.get(cache.make_key(b, kind="demo")) is None

    def test_params_order_irrelevant(self):
        t = grouped_table()
        k1 = SynopsisCache.make_key(t, "demo", ("c",), {"a": 1, "b": 2})
        k2 = SynopsisCache.make_key(t, "demo", ("c",), {"b": 2, "a": 1})
        assert k1 == k2

    def test_shard_id_disambiguates_fingerprint_collisions(self):
        # The fingerprint probes 64 evenly spaced rows, so two
        # equal-length tables with the same name that differ only at an
        # unprobed row — exactly what two shards of one parent look like
        # — can collide on content address alone. The shard id in the
        # key is what keeps their synopses apart.
        x = np.arange(4096, dtype=np.float64)
        y = x.copy()
        y[1] = -1.0  # row 1 is never probed at this length
        a = Table({"v": x}, name="events")
        b = Table({"v": y}, name="events")
        assert a.fingerprint() == b.fingerprint()  # the collision is real
        assert SynopsisCache.make_key(a, "sample") == SynopsisCache.make_key(
            b, "sample"
        )
        k0 = SynopsisCache.make_key(a, "sample", shard=0)
        k1 = SynopsisCache.make_key(b, "sample", shard=1)
        assert k0 != k1
        cache = SynopsisCache()
        cache.put(k0, "shard-0-sample", nbytes=1)
        cache.put(k1, "shard-1-sample", nbytes=1)
        assert cache.get(k0) == "shard-0-sample"
        assert cache.get(k1) == "shard-1-sample"

    def test_get_or_build_threads_the_shard_id(self):
        cache = SynopsisCache()
        t = grouped_table(name="events")
        built = []
        for shard in (0, 1, 0):
            cache.get_or_build(
                t,
                kind="sample",
                builder=lambda shard=shard: built.append(shard) or shard,
                nbytes=1,
                shard=shard,
            )
        # one build per shard id; the repeat of shard 0 was a cache hit
        assert built == [0, 1]


class TestEviction:
    def _key(self, cache, t, i):
        return cache.make_key(t, kind="demo", params={"i": i})

    def test_lru_eviction_under_byte_budget(self):
        cache = SynopsisCache(max_bytes=100)
        t = grouped_table()
        for i in range(4):
            cache.put(self._key(cache, t, i), f"v{i}", nbytes=30)
        # 4 * 30 > 100: the oldest entry must have been evicted.
        assert len(cache) == 3
        assert cache.stats.evictions == 1
        assert cache.get(self._key(cache, t, 0)) is None
        assert cache.get(self._key(cache, t, 3)) == "v3"
        assert cache.current_bytes <= 100

    def test_recently_used_survives(self):
        cache = SynopsisCache(max_bytes=100)
        t = grouped_table()
        for i in range(3):
            cache.put(self._key(cache, t, i), f"v{i}", nbytes=30)
        assert cache.get(self._key(cache, t, 0)) == "v0"  # touch entry 0
        cache.put(self._key(cache, t, 3), "v3", nbytes=30)
        # Entry 1 (now the least recently used) was evicted, not entry 0.
        assert cache.get(self._key(cache, t, 0)) == "v0"
        assert cache.get(self._key(cache, t, 1)) is None

    def test_oversized_entry_never_admitted(self):
        cache = SynopsisCache(max_bytes=100)
        t = grouped_table()
        cache.put(self._key(cache, t, 0), "huge", nbytes=1000)
        assert len(cache) == 0 and cache.current_bytes == 0

    def test_zero_budget_disables_caching(self):
        cache = SynopsisCache(max_bytes=0)
        t = grouped_table()
        calls = []
        for _ in range(2):
            cache.get_or_build(
                t, kind="demo", builder=lambda: calls.append(1), nbytes=1
            )
        assert len(calls) == 2 and cache.stats.hits == 0


class TestInvalidation:
    def test_replace_table_invalidates(self, fresh_global_cache):
        db = Database()
        t = grouped_table(name="sales")
        db.create_table("sales", t)
        build_sample_seek(db.table("sales"), "value", "group_id", 500, seed=3)
        assert len(fresh_global_cache) == 1
        db.replace_table("sales", grouped_table(seed=99, name="sales"))
        assert len(fresh_global_cache) == 0
        assert fresh_global_cache.stats.invalidations == 1

    def test_drop_table_invalidates(self, fresh_global_cache):
        db = Database()
        db.create_table("sales", grouped_table(name="sales"))
        build_sample_seek(db.table("sales"), "value", "group_id", 500, seed=3)
        db.drop_table("sales")
        assert len(fresh_global_cache) == 0

    def test_stale_entries_unreachable_even_without_invalidation(self):
        # Content addressing is the correctness story: even if nobody
        # calls invalidate_table, the replaced table's fingerprint changes
        # and the old synopsis can never be served for the new content.
        cache = SynopsisCache()
        old = grouped_table(seed=1, name="sales")
        new = grouped_table(seed=2, name="sales")
        syn = build_sample_seek(old, "value", "group_id", 500, seed=3, cache=cache)
        key_new = cache.make_key(new, "sample_seek", ("value", "group_id"),
                                 {"sample_size": 500, "seed": 3})
        assert cache.get(key_new) is None
        assert syn is build_sample_seek(
            old, "value", "group_id", 500, seed=3, cache=cache
        )


class TestIdenticalAnswers:
    def test_sample_seek_cache_on_vs_off(self):
        t = grouped_table(n=8_000, groups=60)
        on, off = SynopsisCache(), SynopsisCache(max_bytes=0)
        answers = {}
        for label, cache in (("on", on), ("off", off)):
            per_run = []
            for _ in range(2):  # second run hits only with cache on
                syn = build_sample_seek(
                    t, "value", "group_id", 800, seed=7, cache=cache
                )
                groups, cost = answer_group_by_sum(syn, t)
                per_run.append([(a.key, a.value, a.method) for a in groups])
            assert per_run[0] == per_run[1]
            answers[label] = per_run[0]
        assert answers["on"] == answers["off"]
        assert on.stats.hits == 1 and off.stats.hits == 0

    def test_blinkdb_cache_on_vs_off(self):
        workload = [QueryTemplate("sales", ("group_id",), 5.0)]
        rows = {}
        for label, max_bytes in (("on", SynopsisCache().max_bytes), ("off", 0)):
            db = Database()
            db.create_table("sales", grouped_table(name="sales"))
            selector = BlinkDBSelector(
                db,
                budget_rows=2_000,
                rows_per_stratum=20,
                seed=13,
                cache=SynopsisCache(max_bytes=max_bytes),
            )
            entries, _ = selector.build_for_workload(workload)
            rows[label] = [
                (e.table, e.kind, e.sample.table.num_rows,
                 float(np.sum(e.sample.table["value"])))
                for e in entries
            ]
        assert rows["on"] == rows["off"]

    def test_blinkdb_second_build_hits(self):
        db = Database()
        db.create_table("sales", grouped_table(name="sales"))
        cache = SynopsisCache()
        workload = [QueryTemplate("sales", ("group_id",), 1.0)]
        for _ in range(2):
            selector = BlinkDBSelector(
                db, budget_rows=2_000, rows_per_stratum=20, seed=13, cache=cache
            )
            selector.build_for_workload(workload)
        assert cache.stats.hits == 1 and cache.stats.misses == 1


class TestGlobalCache:
    def test_global_cache_roundtrip(self):
        previous = get_global_cache()
        try:
            mine = SynopsisCache(max_bytes=123)
            set_global_cache(mine)
            assert get_global_cache() is mine
        finally:
            set_global_cache(previous)
