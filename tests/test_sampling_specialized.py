"""Tests for outlier, measure-biased, distinct, universe, reservoir, and
join-synopsis samplers."""

import numpy as np
import pytest

from repro import Database, SynopsisError, Table
from repro.audit.acceptance import chi2_upper_bound, mc_mean_within
from repro.engine.executor import join_indices
from repro.sampling.distinct import distinct_sample, group_coverage
from repro.sampling.join_synopsis import (
    ForeignKeyEdge,
    build_join_synopsis,
    refresh_needed,
)
from repro.sampling.measure_biased import (
    estimate_sum as mb_estimate_sum,
    measure_biased_sample,
    optimal_variance_ratio,
)
from repro.sampling.outlier import (
    build_outlier_index,
    estimate_sum_with_outliers,
    variance_reduction,
)
from repro.sampling.reservoir import ReservoirSampler
from repro.sampling.row import bernoulli_sample
from repro.sampling.universe import (
    estimate_join_sum,
    joint_universe_samples,
    universe_sample,
)
from repro.workloads import heavy_tailed_table, zipf_group_table


@pytest.fixture
def heavy(rng):
    return Table(heavy_tailed_table(40_000, sigma=2.5, seed=3), block_size=512)


class TestOutlierIndex:
    def test_split_sizes(self, heavy):
        idx = build_outlier_index(heavy, "value", 0.02)
        assert idx.outliers.num_rows == pytest.approx(800, abs=2)
        assert idx.outliers.num_rows + idx.inliers.num_rows == heavy.num_rows

    def test_outliers_are_extreme(self, heavy):
        idx = build_outlier_index(heavy, "value", 0.01)
        assert idx.outliers["value"].min() > np.median(heavy["value"])

    def test_variance_reduction_large_on_heavy_tails(self, heavy):
        assert variance_reduction(heavy, "value", 0.01) > 10

    def test_estimate_much_tighter_than_uniform(self, heavy, rng):
        truth = heavy["value"].sum()
        idx = build_outlier_index(heavy, "value", 0.01)
        outlier_errs, uniform_errs = [], []
        for t in range(30):
            r = np.random.default_rng(t)
            est, _ = estimate_sum_with_outliers(idx, 0.01, r)
            outlier_errs.append(abs(est.value - truth) / truth)
            u = bernoulli_sample(heavy, 0.01, r)
            uniform_errs.append(
                abs(u.estimate_sum("value").value - truth) / truth
            )
        assert np.median(outlier_errs) < np.median(uniform_errs)

    def test_zero_fraction(self, heavy):
        idx = build_outlier_index(heavy, "value", 0.0)
        assert idx.outliers.num_rows == 0

    def test_fraction_validation(self, heavy):
        with pytest.raises(ValueError):
            build_outlier_index(heavy, "value", 1.0)


class TestMeasureBiased:
    def test_expected_size(self, heavy, rng):
        s = measure_biased_sample(heavy, "value", 2000, rng)
        assert 500 < s.num_rows < 8000  # clipping makes this loose

    def test_sum_estimate_accurate(self, heavy, rng):
        s = measure_biased_sample(heavy, "value", 2000, rng)
        est = mb_estimate_sum(s)
        truth = heavy["value"].sum()
        assert est.value == pytest.approx(truth, rel=0.1)

    def test_beats_uniform_variance_on_skew(self, heavy):
        assert optimal_variance_ratio(heavy["value"]) > 5

    def test_uniform_measure_ratio_is_one(self):
        assert optimal_variance_ratio(np.full(1000, 3.0)) == pytest.approx(1.0)

    def test_predicate_mask(self, heavy, rng):
        s = measure_biased_sample(heavy, "value", 3000, rng)
        mask = s.table["group_id"] == 1
        est = mb_estimate_sum(s, mask)
        truth = heavy["value"][heavy["group_id"] == 1].sum()
        assert est.value == pytest.approx(truth, rel=0.25)

    def test_size_validation(self, heavy):
        with pytest.raises(ValueError):
            measure_biased_sample(heavy, "value", 0)


class TestDistinctSampler:
    @pytest.fixture
    def zipf(self):
        return Table(zipf_group_table(60_000, num_groups=500, zipf_s=1.6, seed=9))

    def test_full_group_coverage(self, zipf, rng):
        s = distinct_sample(zipf, ["group_id"], rate=0.01, frequency_cap=4, rng=rng)
        assert group_coverage(s, zipf) == 1.0

    def test_uniform_coverage_is_worse(self, zipf, rng):
        u = bernoulli_sample(zipf, 0.01, rng)
        base_groups = len(np.unique(zipf["group_id"]))
        seen = len(np.unique(u.table["group_id"]))
        assert seen < base_groups

    @pytest.mark.statistical
    def test_count_estimate_unbiasedish(self, zipf):
        ests = []
        for t in range(25):
            s = distinct_sample(
                zipf, ["group_id"], 0.02, frequency_cap=5,
                rng=np.random.default_rng(t),
            )
            ests.append(s.estimate_count().value)
        assert mc_mean_within(ests, zipf.num_rows)

    def test_weights_bounded_by_inverse_rate(self, zipf, rng):
        s = distinct_sample(zipf, ["group_id"], 0.1, frequency_cap=2, rng=rng)
        assert s.weights.max() <= 1.0 / 0.1 + 1e-9
        assert s.weights.min() >= 1.0

    def test_validation(self, zipf):
        with pytest.raises(ValueError):
            distinct_sample(zipf, ["group_id"], 0.0)
        with pytest.raises(ValueError):
            distinct_sample(zipf, ["group_id"], 0.5, frequency_cap=0)


class TestUniverseSampling:
    def test_keys_survive_together(self, rng):
        left = Table({"k": rng.integers(0, 1000, 20_000), "v": rng.random(20_000)})
        right = Table({"k": np.arange(1000), "w": rng.random(1000)})
        ls, rs = joint_universe_samples(left, "k", right, "k", 0.2, seed=3)
        assert set(np.unique(ls.table["k"])) <= set(np.unique(rs.table["k"]))

    def test_key_fraction_near_rate(self, rng):
        t = Table({"k": np.arange(10_000)})
        s = universe_sample(t, "k", 0.1, seed=1)
        assert s.num_rows == pytest.approx(1000, abs=120)

    def test_join_sum_estimate(self, rng):
        n, d = 50_000, 2000
        keys = rng.integers(0, d, n)
        left = Table({"k": keys, "v": rng.exponential(5, n)})
        right = Table({"k": np.arange(d), "w": rng.random(d)})
        truth = float(np.sum(left["v"] * right["w"][keys]))
        ls, rs = joint_universe_samples(left, "k", right, "k", 0.15, seed=8)
        li, ri, _ = join_indices([ls.table["k"]], [rs.table["k"]])
        vals = ls.table["v"][li] * rs.table["w"][ri]
        est = estimate_join_sum(vals, ls.table["k"][li], 0.15)
        assert est.value == pytest.approx(truth, rel=0.25)
        lo, hi = est.ci(0.95)
        assert lo < truth < hi

    def test_rate_validation(self, rng):
        with pytest.raises(ValueError):
            universe_sample(Table({"k": np.arange(5)}), "k", 0.0)


class TestReservoir:
    def test_fills_to_capacity(self):
        r = ReservoirSampler(10, seed=0)
        r.offer_many(range(5))
        assert len(r) == 5
        r.offer_many(range(5, 100))
        assert len(r) == 10

    @pytest.mark.statistical
    def test_uniformity_chi_squared(self):
        # Each of 20 items should land in a 10-slot reservoir w.p. 1/2.
        counts = np.zeros(20)
        for seed in range(400):
            r = ReservoirSampler(10, seed=seed)
            r.offer_many(range(20))
            for item in r.sample():
                counts[item] += 1
        expected = 400 * 10 / 20
        chi2 = float(np.sum((counts - expected) ** 2 / expected))
        assert chi2 < chi2_upper_bound(df=19)

    def test_offer_one_matches_seen(self):
        r = ReservoirSampler(5, seed=1)
        for i in range(1000):
            r.offer(i)
        assert r.seen == 1000

    def test_weight(self):
        r = ReservoirSampler(10, seed=2)
        r.offer_many(range(1000))
        assert r.weight == pytest.approx(100.0)

    def test_mean_estimate(self):
        r = ReservoirSampler(500, seed=3)
        r.offer_many(range(100_000))
        assert np.mean(r.sample_array()) == pytest.approx(50_000, rel=0.1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0)


class TestJoinSynopsis:
    @pytest.fixture
    def star(self, rng):
        db = Database()
        n, d = 30_000, 200
        db.create_table(
            "fact",
            {"fk": rng.integers(0, d, n), "v": rng.exponential(3, n)},
        )
        db.create_table(
            "dim",
            {"k": np.arange(d), "cat": rng.integers(0, 5, d)},
        )
        return db

    def test_build_and_estimate(self, star, rng):
        syn = build_join_synopsis(
            star, "fact", [ForeignKeyEdge("fk", "dim", "k")], 3000, rng
        )
        assert "dim.cat" in syn.sample.table.column_names
        # SUM(v) over the join (which equals SUM over fact for FK joins)
        est = syn.sample.estimate_sum("v")
        assert est.value == pytest.approx(star.table("fact")["v"].sum(), rel=0.1)

    def test_filtered_dimension_predicate(self, star, rng):
        syn = build_join_synopsis(
            star, "fact", [ForeignKeyEdge("fk", "dim", "k")], 5000, rng
        )
        mask = syn.sample.table["dim.cat"] == 2
        filt = syn.sample.filtered(mask)
        cats = star.table("dim")["cat"][star.table("fact")["fk"]]
        truth = star.table("fact")["v"][cats == 2].sum()
        assert filt.estimate_sum("v").value == pytest.approx(truth, rel=0.2)

    def test_broken_fk_rejected(self, rng):
        db = Database()
        db.create_table("fact", {"fk": np.array([0, 99]), "v": np.array([1.0, 2.0])})
        db.create_table("dim", {"k": np.array([0]), "c": np.array([1])})
        with pytest.raises(SynopsisError, match="no match"):
            build_join_synopsis(db, "fact", [ForeignKeyEdge("fk", "dim", "k")], 2, rng)

    def test_non_n1_join_rejected(self, rng):
        db = Database()
        db.create_table("fact", {"fk": np.array([0]), "v": np.array([1.0])})
        db.create_table("dim", {"k": np.array([0, 0]), "c": np.array([1, 2])})
        with pytest.raises(SynopsisError, match="N:1"):
            build_join_synopsis(db, "fact", [ForeignKeyEdge("fk", "dim", "k")], 1, rng)

    def test_refresh_needed_after_growth(self, star, rng):
        syn = build_join_synopsis(
            star, "fact", [ForeignKeyEdge("fk", "dim", "k")], 1000, rng
        )
        assert not refresh_needed(syn, star)
        star.append_rows(
            "fact",
            {"fk": rng.integers(0, 200, 10_000), "v": rng.random(10_000)},
        )
        assert refresh_needed(syn, star)
