"""Tests for the advisor routing, the session facade, and the trade-off
model (the paper's thesis as executable assertions)."""

import numpy as np
import pytest

from repro import (
    AQPEngine,
    ApproximateResult,
    Database,
    ErrorSpec,
    InfeasiblePlanError,
    QueryResult,
    UnsupportedQueryError,
    comparison_matrix,
    no_silver_bullet,
)
from repro.core.tradeoff import (
    TECHNIQUE_PROFILES,
    TechniqueProfile,
    dominated_techniques,
    format_matrix,
)
from repro.offline import SampleEntry, SynopsisCatalog
from repro.sampling.stratified import stratified_sample


@pytest.fixture
def db(rng):
    n = 200_000
    db = Database()
    db.create_table(
        "facts",
        {
            "value": rng.exponential(10, n),
            "g": rng.integers(0, 8, n),
            "sel": rng.random(n),
        },
        block_size=512,
    )
    return db


class TestSessionRouting:
    def test_exact_without_spec(self, db):
        res = db.sql("SELECT SUM(value) AS s FROM facts")
        assert isinstance(res, QueryResult)
        assert not res.is_approximate

    def test_sql_error_clause_routes_to_aqp(self, db):
        res = db.sql(
            "SELECT SUM(value) AS s FROM facts ERROR WITHIN 5% CONFIDENCE 95%",
            seed=1,
        )
        assert isinstance(res, ApproximateResult)
        assert res.technique in ("pilot", "quickr", "offline_sample")

    def test_python_spec_overrides(self, db):
        res = AQPEngine(db).sql(
            "SELECT SUM(value) AS s FROM facts", spec=ErrorSpec(0.1, 0.9), seed=1
        )
        assert res.is_approximate
        assert res.spec.relative_error == 0.1

    def test_force_exact(self, db):
        res = AQPEngine(db).sql(
            "SELECT SUM(value) AS s FROM facts ERROR WITHIN 5% CONFIDENCE 95%",
            technique="exact",
        )
        assert isinstance(res, QueryResult)

    def test_force_pilot(self, db):
        res = AQPEngine(db).sql(
            "SELECT SUM(value) AS s FROM facts", spec=ErrorSpec(0.05, 0.95),
            technique="pilot", seed=2,
        )
        assert res.technique == "pilot"

    def test_force_quickr(self, db):
        res = AQPEngine(db).sql(
            "SELECT SUM(value) AS s FROM facts", spec=ErrorSpec(0.05, 0.95),
            technique="quickr", seed=2,
        )
        assert res.technique == "quickr"

    def test_force_unknown_technique(self, db):
        with pytest.raises(UnsupportedQueryError):
            AQPEngine(db).sql(
                "SELECT SUM(value) AS s FROM facts",
                spec=ErrorSpec(0.05, 0.95),
                technique="magic",
            )

    def test_force_infeasible_raises(self, db):
        with pytest.raises(InfeasiblePlanError):
            AQPEngine(db).sql(
                "SELECT SUM(value) AS s FROM facts",
                spec=ErrorSpec(0.05, 0.95),
                technique="offline_sample",  # no catalog entries exist
            )

    def test_offline_preferred_when_available(self, db, rng):
        cat = SynopsisCatalog.for_database(db)
        sample = stratified_sample(db.table("facts"), "g", 30_000, rng=rng)
        cat.add_sample(
            SampleEntry(
                table="facts",
                sample=sample,
                kind="stratified",
                strata_column="g",
                built_at_rows=db.table("facts").num_rows,
            )
        )
        res = db.sql(
            "SELECT g, SUM(value) AS s FROM facts GROUP BY g "
            "ERROR WITHIN 10% CONFIDENCE 90%",
            seed=3,
        )
        assert res.technique == "offline_sample"

    def test_nonlinear_falls_back_to_exact(self, db):
        res = db.sql(
            "SELECT MAX(value) AS m FROM facts ERROR WITHIN 5% CONFIDENCE 95%"
        )
        assert isinstance(res, QueryResult)  # graceful exact fallback
        assert res.scalar() == pytest.approx(db.table("facts")["value"].max())

    def test_approximate_result_summary(self, db):
        res = db.sql(
            "SELECT SUM(value) AS s FROM facts ERROR WITHIN 5% CONFIDENCE 95%",
            seed=4,
        )
        text = res.summary()
        assert "technique=" in text and "speedup" in text

    def test_explain(self, db):
        text = db.explain("SELECT SUM(value) AS s FROM facts WHERE sel < 0.5")
        assert "Scan(facts" in text


class TestTradeoffModel:
    def test_no_silver_bullet_holds(self):
        assert no_silver_bullet()

    def test_exact_is_the_degenerate_corner(self):
        row = next(r for r in comparison_matrix() if r.technique == "exact")
        assert row.generality == 1.0 and row.guarantee == 1.0
        assert row.speedup == 0.0

    def test_every_technique_wins_somewhere(self):
        assert dominated_techniques() == []

    def test_sketch_is_narrow_but_guaranteed(self):
        sketch = TECHNIQUE_PROFILES["sketch"]
        pilot = TECHNIQUE_PROFILES["pilot"]
        assert sketch.generality_score < pilot.generality_score
        assert sketch.guarantee_score == 1.0
        assert sketch.speedup_score > pilot.speedup_score

    def test_offline_needs_maintenance_online_does_not(self):
        assert TECHNIQUE_PROFILES["offline_sample"].needs_precomputation
        assert not TECHNIQUE_PROFILES["pilot"].needs_precomputation
        assert not TECHNIQUE_PROFILES["quickr"].needs_precomputation

    def test_format_matrix_renders(self):
        text = format_matrix(comparison_matrix())
        assert "technique" in text
        for name in TECHNIQUE_PROFILES:
            assert name in text

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            TechniqueProfile(
                name="x",
                aggregates=frozenset(),
                supports_joins=False,
                supports_adhoc_predicates=False,
                supports_small_groups=False,
                guarantee="pinky_promise",
                needs_precomputation=False,
                typical_touch_fraction=0.5,
            )

    def test_a_silver_bullet_would_be_detected(self):
        profiles = dict(TECHNIQUE_PROFILES)
        profiles["miracle"] = TechniqueProfile(
            name="miracle",
            aggregates=frozenset(
                {"sum", "count", "avg", "min", "max", "count_distinct"}
            ),
            supports_joins=True,
            supports_adhoc_predicates=True,
            supports_small_groups=True,
            guarantee="a_priori",
            needs_precomputation=False,
            typical_touch_fraction=0.0,
        )
        assert not no_silver_bullet(profiles)
