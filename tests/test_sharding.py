"""Sharded substrate + scatter-gather executor correctness.

Covers the partition substrate (disjoint/complete shards, widening
envelopes), exact/OLA/sample scatter-gather against whole-table oracles,
the missing-shard widening rule's deterministic honesty, quorum refusal,
straggler hedging, per-shard breakers, catalog shard isolation, and the
partial-merge helpers.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.errorspec import ErrorSpec
from repro.core.exceptions import (
    MergeError,
    QueryRefused,
    SchemaError,
    UnsupportedQueryError,
)
from repro.core.result import ApproximateResult, QueryResult
from repro.engine.database import Database
from repro.engine.table import Table
from repro.offline.catalog import SampleEntry, SynopsisCatalog
from repro.resilience import (
    Deadline,
    FaultInjector,
    FaultSpec,
    ManualClock,
    RESHARD_RUNG,
    corrupt_shard,
    inject,
    kill_shard,
    shard_site,
)
from repro.sampling.row import srs_sample
from repro.sharding import (
    SCATTER_RUNG,
    ScatterGatherExecutor,
    ShardedTable,
    compute_shard_stats,
    merge_sketches,
    merge_snapshots,
    merge_weighted_samples,
)

N_ROWS = 4_096
NUM_SHARDS = 8
SPEC = ErrorSpec(relative_error=0.10, confidence=0.95)


def _make_table(seed: int = 7, signed: bool = False) -> Table:
    rng = np.random.default_rng(seed)
    values = (
        rng.normal(0.0, 50.0, N_ROWS)
        if signed
        else rng.exponential(10.0, N_ROWS)
    )
    return Table(
        {
            "v": values,
            "k": rng.integers(0, 5, N_ROWS),
        },
        name="events",
        block_size=256,
    )


@pytest.fixture()
def world():
    table = _make_table()
    db = Database()
    db.create_table("events", {c: table[c] for c in table.column_names})
    sharded = ShardedTable.from_table(table, NUM_SHARDS)
    return db, sharded


# ----------------------------------------------------------------------
# Substrate
# ----------------------------------------------------------------------
class TestSubstrate:
    def test_split_by_assignment_partitions_stably(self):
        t = Table({"x": np.arange(10)}, name="t")
        parts = t.split_by_assignment(
            np.array([0, 1, 0, 2, 1, 0, 2, 2, 1, 0]), 3
        )
        assert [list(p["x"]) for p in parts] == [
            [0, 2, 5, 9],
            [1, 4, 8],
            [3, 6, 7],
        ]

    def test_split_by_assignment_rejects_bad_input(self):
        t = Table({"x": np.arange(4)}, name="t")
        with pytest.raises(SchemaError):
            t.split_by_assignment(np.array([0, 1]), 2)
        with pytest.raises(SchemaError):
            t.split_by_assignment(np.array([0, 1, 2, 3]), 3)
        with pytest.raises(SchemaError):
            t.split_by_assignment(np.array([0, -1, 0, 1]), 2)

    @pytest.mark.parametrize("by,key", [("hash", None), ("hash", "k"),
                                        ("range", "v")])
    def test_shards_are_disjoint_and_complete(self, by, key):
        table = _make_table()
        sharded = ShardedTable.from_table(table, NUM_SHARDS, by=by, key=key)
        assert sharded.num_shards == NUM_SHARDS
        assert sharded.total_rows == table.num_rows
        merged = np.sort(
            np.concatenate([s.table["v"] for s in sharded.shards])
        )
        assert np.array_equal(merged, np.sort(np.asarray(table["v"])))

    def test_range_shards_are_ordered(self):
        table = _make_table()
        sharded = ShardedTable.from_table(
            table, 4, by="range", key="v"
        )
        maxes = [float(np.max(s.table["v"])) for s in sharded.shards]
        mins = [float(np.min(s.table["v"])) for s in sharded.shards]
        for i in range(3):
            assert maxes[i] <= mins[i + 1] + 1e-12

    def test_from_table_rejects_bad_input(self):
        table = _make_table()
        with pytest.raises(SchemaError):
            ShardedTable.from_table(table, 0)
        with pytest.raises(SchemaError):
            ShardedTable.from_table(table, 2, by="round_robin")
        with pytest.raises(SchemaError):
            ShardedTable.from_table(table, 2, by="range")  # no key
        with pytest.raises(SchemaError):
            ShardedTable.from_table(Table({"x": np.array([])}), 2)

    def test_stats_envelope_bounds_every_subset_sum(self):
        rng = np.random.default_rng(11)
        x = rng.normal(0.0, 1.0, 500)
        stats = compute_shard_stats(Table({"x": x}, name="t"))
        b = stats.sum_envelope("x")
        assert b.total == pytest.approx(float(x.sum()))
        assert b.positive == pytest.approx(float(x[x > 0].sum()))
        assert b.negative == pytest.approx(float(x[x < 0].sum()))
        for _ in range(50):
            mask = rng.random(500) < rng.random()
            s = float(x[mask].sum())
            assert b.negative - 1e-9 <= s <= b.positive + 1e-9

    def test_stats_skip_non_finite_columns(self):
        t = Table(
            {"ok": np.array([1.0, 2.0]), "bad": np.array([1.0, np.inf])},
            name="t",
        )
        stats = compute_shard_stats(t)
        assert stats.sum_envelope("ok") is not None
        assert stats.sum_envelope("bad") is None


# ----------------------------------------------------------------------
# Exact scatter-gather == whole-table engine
# ----------------------------------------------------------------------
class TestExactScatterGather:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_scalar_aggregates_match_engine(self, world, workers):
        db, sharded = world
        q = (
            "SELECT SUM(v) AS s, COUNT(*) AS c, AVG(v) AS a "
            "FROM events WHERE v > 12"
        )
        expect = db.sql(q).table
        ex = ScatterGatherExecutor(sharded, max_workers=workers)
        result = ex.sql(q)
        assert isinstance(result, QueryResult)
        for col in ("s", "c", "a"):
            assert float(result.table[col][0]) == pytest.approx(
                float(expect[col][0]), rel=1e-12
            )
        shard_steps = [p for p in result.provenance if "shard" in p]
        assert [p["status"] for p in shard_steps] == ["served"] * NUM_SHARDS
        assert result.provenance[-1]["coverage"] == pytest.approx(1.0)

    def test_group_by_matches_engine(self, world):
        db, sharded = world
        q = (
            "SELECT k, SUM(v) AS s, COUNT(*) AS c "
            "FROM events WHERE v > 8 GROUP BY k"
        )
        expect = db.sql(q).table
        truth = {
            int(expect["k"][i]): (
                float(expect["s"][i]),
                float(expect["c"][i]),
            )
            for i in range(expect.num_rows)
        }
        got_tbl = ScatterGatherExecutor(sharded).sql(q).table
        got = {
            int(got_tbl["k"][i]): (
                float(got_tbl["s"][i]),
                float(got_tbl["c"][i]),
            )
            for i in range(got_tbl.num_rows)
        }
        assert set(got) == set(truth)
        for key in truth:
            assert got[key][0] == pytest.approx(truth[key][0], rel=1e-12)
            assert got[key][1] == truth[key][1]

    def test_unsupported_queries_are_typed(self, world):
        _db, sharded = world
        ex = ScatterGatherExecutor(sharded)
        bad = [
            ("SELECT SUM(v) AS s FROM events", {"mode": "psychic"}),
            ("SELECT v FROM events LIMIT 3", {}),
            ("SELECT SUM(v) AS s FROM events ORDER BY s", {}),
            ("SELECT MIN(v) AS m FROM events", {}),
            ("SELECT k, SUM(v) AS s FROM events GROUP BY k",
             {"mode": "ola", "spec": SPEC}),
            ("SELECT SUM(v) AS s, COUNT(*) AS c FROM events",
             {"mode": "ola", "spec": SPEC}),
        ]
        for sql, kwargs in bad:
            with pytest.raises(UnsupportedQueryError):
                ex.sql(sql, **kwargs)


# ----------------------------------------------------------------------
# Missing-shard widening
# ----------------------------------------------------------------------
class TestMissingShardWidening:
    @pytest.mark.parametrize("signed", [False, True])
    def test_widened_ci_always_covers_truth(self, signed):
        table = _make_table(seed=23, signed=signed)
        sharded = ShardedTable.from_table(table, NUM_SHARDS)
        v = np.asarray(table["v"])
        threshold = float(np.quantile(v, 0.6))
        q = f"SELECT SUM(v) AS s, COUNT(*) AS c FROM events WHERE v > {threshold}"
        truth_s = float(v[v > threshold].sum())
        truth_c = float((v > threshold).sum())
        for victim in range(NUM_SHARDS):
            ex = ScatterGatherExecutor(sharded, max_workers=1)
            with inject(FaultInjector([kill_shard(victim)])):
                result = ex.sql(q)
            assert isinstance(result, ApproximateResult)
            assert result.is_degraded
            s = result.estimate("s", 0)
            c = result.estimate("c", 0)
            # deterministic, not statistical: exact survivors + a
            # worst-case envelope must always contain the truth
            assert s.ci_low - 1e-9 <= truth_s <= s.ci_high + 1e-9
            assert c.ci_low - 1e-9 <= truth_c <= c.ci_high + 1e-9
            assert s.ci_low <= s.value <= s.ci_high
            summary = result.provenance[-1]
            assert summary["rung"] == RESHARD_RUNG
            assert summary["shards_missing"] == [victim]
            assert summary["coverage"] == pytest.approx(
                sharded.rows_in(
                    [i for i in range(NUM_SHARDS) if i != victim]
                )
                / sharded.total_rows
            )

    def test_grouped_cells_widen_by_full_envelope(self, world):
        _db, sharded = world
        table = sharded.whole_table()
        v, k = np.asarray(table["v"]), np.asarray(table["k"])
        q = "SELECT k, SUM(v) AS s FROM events WHERE v > 9 GROUP BY k"
        ex = ScatterGatherExecutor(sharded, max_workers=1)
        with inject(FaultInjector([kill_shard(3)])):
            result = ex.sql(q)
        assert result.is_degraded
        assert result.diagnostics["groups_possibly_missing"] is True
        for row in range(result.table.num_rows):
            key = int(result.table["k"][row])
            truth = float(v[(k == key) & (v > 9)].sum())
            cell = result.estimate("s", row)
            assert cell.ci_low - 1e-9 <= truth <= cell.ci_high + 1e-9

    def test_empty_served_count_makes_avg_unbounded(self, world):
        _db, sharded = world
        hi = float(np.max(np.asarray(sharded.whole_table()["v"]))) + 1.0
        ex = ScatterGatherExecutor(sharded, max_workers=1)
        with inject(FaultInjector([kill_shard(0)])):
            result = ex.sql(
                f"SELECT AVG(v) AS a FROM events WHERE v > {hi}"
            )
        cell = result.estimate("a", 0)
        assert math.isinf(cell.ci_low) and math.isinf(cell.ci_high)

    def test_quorum_failure_refuses_with_provenance(self, world):
        _db, sharded = world
        ex = ScatterGatherExecutor(sharded, max_workers=1)
        specs = [kill_shard(i) for i in range(5)]
        with inject(FaultInjector(specs)):
            with pytest.raises(QueryRefused) as exc:
                ex.sql("SELECT SUM(v) AS s FROM events")
        prov = exc.value.provenance
        shard_steps = [p for p in prov if "shard" in p]
        assert len(shard_steps) == NUM_SHARDS
        assert (
            sum(1 for p in shard_steps if p["status"] == "failed") == 5
        )
        assert prov[-1]["outcome"] == "failed"

    def test_expression_aggregate_cannot_widen(self, world):
        _db, sharded = world
        ex = ScatterGatherExecutor(sharded, max_workers=1)
        # fine with all shards present ...
        full = ex.sql("SELECT SUM(v * 2) AS s FROM events")
        assert float(full.table["s"][0]) == pytest.approx(
            2.0 * float(np.asarray(sharded.whole_table()["v"]).sum())
        )
        # ... but with a shard down there is no catalog envelope for the
        # expression, so the executor must refuse rather than guess
        with inject(FaultInjector([kill_shard(2)])):
            with pytest.raises(QueryRefused, match="widen"):
                ex.sql("SELECT SUM(v * 2) AS s FROM events")

    def test_non_finite_column_cannot_widen(self):
        rng = np.random.default_rng(5)
        w = rng.normal(0.0, 1.0, 1024)
        w[100] = np.inf
        table = Table({"w": w}, name="events", block_size=256)
        sharded = ShardedTable.from_table(table, 4)
        ex = ScatterGatherExecutor(sharded, max_workers=1)
        victim = next(
            s.shard_id
            for s in sharded.shards
            if s.stats.sum_envelope("w") is None
        )
        with inject(FaultInjector([kill_shard(victim)])):
            with pytest.raises(QueryRefused, match="widen"):
                ex.sql("SELECT SUM(w) AS s FROM events")


# ----------------------------------------------------------------------
# OLA and sample modes
# ----------------------------------------------------------------------
class TestApproximateModes:
    def test_ola_mode_covers_truth(self, world):
        db, sharded = world
        q = "SELECT SUM(v) AS s FROM events WHERE v > 12"
        truth = float(db.sql(q).table["s"][0])
        hits = 0
        for seed in range(10):
            result = ScatterGatherExecutor(sharded).sql(
                q, spec=SPEC, seed=seed, mode="ola"
            )
            assert isinstance(result, ApproximateResult)
            assert result.technique == "scatter_gather_ola"
            hits += result.estimate("s", 0).covers(truth)
        assert hits >= 8

    def test_sample_mode_uses_shard_samples(self, world):
        db, sharded = world
        sharded.build_shard_samples(rows_per_shard=200, seed=1)
        q = "SELECT SUM(v) AS s FROM events WHERE v > 12"
        truth = float(db.sql(q).table["s"][0])
        result = ScatterGatherExecutor(sharded).sql(
            q, spec=SPEC, mode="sample"
        )
        assert result.technique == "scatter_gather_sample"
        cell = result.estimate("s", 0)
        assert cell.ci_low <= truth <= cell.ci_high
        # the estimate comes from samples, not full scans
        assert result.stats.rows_scanned <= 200 * NUM_SHARDS

    def test_sample_mode_without_samples_refuses(self):
        sharded = ShardedTable.from_table(_make_table(seed=31), 4)
        ex = ScatterGatherExecutor(sharded)
        with pytest.raises(QueryRefused):
            ex.sql(
                "SELECT SUM(v) AS s FROM events", spec=SPEC, mode="sample"
            )

    def test_corrupt_shard_is_a_typed_failure(self, world):
        db, sharded = world
        q = "SELECT SUM(v) AS s FROM events WHERE v > 12"
        truth = float(db.sql(q).table["s"][0])
        ex = ScatterGatherExecutor(sharded, max_workers=1)
        with inject(FaultInjector([corrupt_shard(4)])):
            result = ex.sql(q)
        step = [p for p in result.provenance if p.get("shard") == 4][0]
        assert step["status"] == "failed"
        assert "checksum" in step["error"]
        cell = result.estimate("s", 0)
        assert cell.ci_low - 1e-9 <= truth <= cell.ci_high + 1e-9


# ----------------------------------------------------------------------
# Hedging and breakers
# ----------------------------------------------------------------------
class TestHedgingAndBreakers:
    def test_straggler_is_abandoned_and_hedged(self, world):
        db, sharded = world
        q = "SELECT SUM(v) AS s FROM events"
        truth = float(db.sql(q).table["s"][0])
        clock = ManualClock()
        slow = FaultSpec(
            site=shard_site(0, "scan"),
            kind="slow",
            delay=2.0,
            probability=1.0,
            max_fires=1,
        )
        ex = ScatterGatherExecutor(
            sharded, max_workers=1, hedge_fraction=0.1
        )
        with inject(FaultInjector([slow], clock=clock)):
            result = ex.sql(q, deadline=Deadline(10.0, clock=clock))
        step = [p for p in result.provenance if p.get("shard") == 0][0]
        assert step["status"] == "served_hedged"
        assert "abandoned" in step["attempts"]
        assert result.provenance[-1]["hedged"] == [0]
        # the hedged retry re-read the whole shard: the answer is exact
        assert float(result.table["s"][0]) == pytest.approx(
            truth, rel=1e-12
        )

    def test_abandonment_does_not_trip_the_breaker(self, world):
        _db, sharded = world
        clock = ManualClock()
        slow = FaultSpec(
            site=shard_site(0, "scan"),
            kind="slow",
            delay=2.0,
            probability=1.0,
            max_fires=1,
        )
        ex = ScatterGatherExecutor(
            sharded, max_workers=1, hedge_fraction=0.1
        )
        with inject(FaultInjector([slow], clock=clock)):
            ex.sql(
                "SELECT SUM(v) AS s FROM events",
                deadline=Deadline(10.0, clock=clock),
            )
        assert ex.breaker(0).total_failures == 0
        assert ex.breaker(0).state == "closed"

    def test_persistent_failures_open_the_breaker(self, world):
        _db, sharded = world
        q = "SELECT SUM(v) AS s FROM events"
        ex = ScatterGatherExecutor(sharded, max_workers=1)
        with inject(FaultInjector([kill_shard(2)])):
            first = ex.sql(q)
            second = ex.sql(q)
            third = ex.sql(q)
        for result in (first, second):
            step = [p for p in result.provenance if p.get("shard") == 2][0]
            assert step["status"] == "failed"
            assert step["attempts"] == ["failed", "failed"]
        step = [p for p in third.provenance if p.get("shard") == 2][0]
        assert step["status"] == "breaker_open"
        assert step["outcome"] == "skipped"
        assert ex.breaker(2).state == "open"
        # untouched shards keep closed breakers
        assert ex.breaker(1).state == "closed"


# ----------------------------------------------------------------------
# Catalog shard isolation
# ----------------------------------------------------------------------
class TestCatalogShardIsolation:
    def test_shard_entries_are_invisible_to_whole_table_lookups(self):
        sharded = ShardedTable.from_table(_make_table(seed=41), 4)
        catalog = SynopsisCatalog.for_database(sharded.binder_database())
        sharded.build_shard_samples(
            rows_per_shard=100, seed=2, catalog=catalog
        )
        assert catalog.find_sample("events", require_fresh=False) is None
        for i in range(4):
            entry = catalog.find_sample(
                "events", require_fresh=False, shard=i
            )
            assert entry is not None and entry.shard == i

    def test_whole_table_entries_are_invisible_to_shard_lookups(self):
        table = _make_table(seed=43)
        catalog = SynopsisCatalog(Database())
        catalog.add_sample(
            SampleEntry(
                table="events",
                sample=srs_sample(table, 100, np.random.default_rng(0)),
                kind="uniform",
                built_at_rows=table.num_rows,
            )
        )
        assert (
            catalog.find_sample("events", require_fresh=False, shard=0)
            is None
        )
        assert catalog.find_sample("events", require_fresh=False) is not None


# ----------------------------------------------------------------------
# Merge helpers
# ----------------------------------------------------------------------
class TestMergeHelpers:
    def test_merge_requires_input(self):
        with pytest.raises(MergeError):
            merge_sketches([])
        with pytest.raises(MergeError):
            merge_snapshots([], 100)
        with pytest.raises(MergeError):
            merge_weighted_samples([])

    def test_merge_weighted_samples_is_shard_stratified_ht(self):
        table = _make_table(seed=47)
        sharded = ShardedTable.from_table(table, 4)
        rng = np.random.default_rng(9)
        samples = [
            srs_sample(s.table, 400, rng) for s in sharded.shards
        ]
        union = merge_weighted_samples(samples)
        assert union.population_rows == table.num_rows
        truth = float(np.asarray(table["v"]).sum())
        est = union.estimate_sum("v")
        lo, hi = est.ci(0.99)
        assert lo <= truth <= hi
