"""Tests for UNION ALL support and the wander join."""

import numpy as np
import pytest

from repro import BindError, Database, SQLSyntaxError, Table
from repro.online.wander import WanderJoin
from repro.offline.sample_seek import build_seek_index
from repro.sql.parser import parse_sql


@pytest.fixture
def db():
    db = Database()
    db.create_table("a", {"x": np.arange(10), "v": np.ones(10)})
    db.create_table("b", {"x": np.arange(4), "v": np.full(4, 2.0)})
    return db


class TestUnionAll:
    def test_parse(self):
        stmt = parse_sql("SELECT x FROM a UNION ALL SELECT x FROM b")
        assert len(stmt.union_branches) == 1

    def test_three_way(self, db):
        res = db.sql(
            "SELECT v FROM a UNION ALL SELECT v FROM b UNION ALL SELECT v FROM b"
        )
        assert res.table.num_rows == 18

    def test_bag_semantics_keep_duplicates(self, db):
        res = db.sql("SELECT x FROM b UNION ALL SELECT x FROM b")
        assert res.table.num_rows == 8

    def test_predicates_per_branch(self, db):
        res = db.sql(
            "SELECT x FROM a WHERE x < 2 UNION ALL SELECT x FROM b WHERE x > 2"
        )
        assert sorted(res.table["x"].tolist()) == [0, 1, 3]

    def test_aggregate_branches(self, db):
        res = db.sql("SELECT SUM(v) AS s FROM a UNION ALL SELECT SUM(v) AS s FROM b")
        assert sorted(res.table["s"].tolist()) == [8.0, 10.0]

    def test_mismatched_schemas_rejected(self, db):
        with pytest.raises(BindError, match="same columns"):
            db.sql("SELECT x FROM a UNION ALL SELECT x, v FROM b")

    def test_union_requires_all(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT x FROM a UNION SELECT x FROM b")

    def test_order_by_in_branch_rejected(self):
        with pytest.raises(SQLSyntaxError, match="ORDER BY"):
            parse_sql("SELECT x FROM a ORDER BY x UNION ALL SELECT x FROM b")

    def test_error_clause_rejected(self):
        with pytest.raises(SQLSyntaxError, match="ERROR WITHIN"):
            parse_sql(
                "SELECT SUM(v) AS s FROM a UNION ALL SELECT SUM(v) AS s FROM b "
                "ERROR WITHIN 5% CONFIDENCE 95%"
            )


class TestWanderJoin:
    @pytest.fixture
    def join_data(self, rng):
        n, d = 60_000, 1500
        keys = rng.integers(0, d, n)
        left = Table({"k": keys, "v": rng.exponential(5.0, n)})
        right = Table({"k": np.arange(d), "w": rng.random(d)})
        truth = float(np.sum(left["v"] * right["w"][keys]))
        return left, right, truth

    def test_unbiased(self, join_data):
        left, right, truth = join_data
        ests = []
        for seed in range(10):
            wj = WanderJoin(left, right, "k", "k", "v", "w", seed=seed)
            ests.append(wj.advance(2000).value)
        assert np.mean(ests) == pytest.approx(truth, rel=0.03)

    def test_ci_covers_and_shrinks(self, join_data):
        left, right, truth = join_data
        wj = WanderJoin(left, right, "k", "k", "v", "w", seed=3)
        early = wj.advance(500)
        late = wj.advance(8000)
        assert late.relative_half_width < early.relative_half_width
        assert late.ci_low <= truth <= late.ci_high

    def test_no_scan_cost_model(self, join_data):
        """Wander join's cost is per-walk index seeks — far below a scan
        for a quick estimate."""
        from repro.storage.cost import scan_cost

        left, right, truth = join_data
        wj = WanderJoin(left, right, "k", "k", "v", "w", seed=4)
        snap = wj.advance(200)
        full = scan_cost(left.num_rows // 1024 + 1, left.num_rows).total
        # A couple hundred seeks beat scanning; per-walk seeks are pricey,
        # so wander join wins only while few walks are needed (its classic
        # regime: quick, rough join estimates on indexed data).
        assert snap.simulated_cost < full

    def test_failed_walks_counted(self, rng):
        # Half the left keys have no partner.
        left = Table({"k": rng.integers(0, 20, 5000), "v": np.ones(5000)})
        right = Table({"k": np.arange(10), "w": np.ones(10)})
        wj = WanderJoin(left, right, "k", "k", "v", "w", seed=5)
        snap = wj.advance(2000)
        assert snap.successful_walks < snap.walks
        truth = float(np.sum(left["k"] < 10))
        assert snap.value == pytest.approx(truth, rel=0.15)

    def test_run_until_target(self, join_data):
        left, right, _ = join_data
        wj = WanderJoin(left, right, "k", "k", "v", "w", seed=6)
        snaps = list(wj.run(batch=1000, target_relative_error=0.05))
        assert snaps[-1].relative_half_width <= 0.05

    def test_reuses_prebuilt_index(self, join_data):
        left, right, truth = join_data
        idx = build_seek_index(right, "k")
        wj = WanderJoin(left, right, "k", "k", "v", "w", seed=7, index=idx)
        assert wj.advance(3000).value == pytest.approx(truth, rel=0.15)
