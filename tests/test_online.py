"""Tests for online AQP: pilot planner, Quickr, OLA, ripple joins."""

import numpy as np
import pytest

from repro import (
    Database,
    ErrorSpec,
    InfeasiblePlanError,
    Table,
    UnsupportedQueryError,
)
from repro.online import (
    OnlineAggregator,
    PilotPlanner,
    QuickrPlanner,
    RippleJoin,
    peeking_coverage,
)
from repro.sql import bind_sql
from repro.workloads import zipf_group_table


@pytest.fixture
def db(rng):
    n = 300_000
    db = Database()
    db.create_table(
        "big",
        {
            "value": rng.exponential(50, n),
            "group_id": rng.integers(0, 6, n),
            "selector": rng.random(n),
        },
        block_size=512,
    )
    db.create_table(
        "tiny", {"k": np.arange(6), "zone": np.array([0, 0, 1, 1, 2, 2])}
    )
    return db


class TestPilotPlanner:
    def test_scalar_sum_guarantee(self, db):
        spec = ErrorSpec(0.05, 0.95)
        truth = db.table("big")["value"].sum()
        bound = bind_sql("SELECT SUM(value) AS s FROM big", db)
        errors = []
        for seed in range(12):
            res = PilotPlanner(db, seed=seed).run(bound, spec)
            errors.append(abs(res.scalar() - truth) / truth)
        # All runs within spec (the planner is deliberately conservative).
        assert max(errors) <= spec.relative_error

    def test_fraction_scanned_small(self, db):
        bound = bind_sql("SELECT SUM(value) AS s FROM big", db)
        res = PilotPlanner(db, seed=1).run(bound, ErrorSpec(0.05, 0.95))
        assert res.fraction_scanned < 0.2
        assert res.speedup > 1.0

    def test_grouped_avg(self, db):
        bound = bind_sql(
            "SELECT group_id, AVG(value) AS m FROM big GROUP BY group_id", db
        )
        res = PilotPlanner(db, seed=2).run(bound, ErrorSpec(0.08, 0.9))
        big = db.table("big")
        for row in res.to_pylist():
            truth = big["value"][big["group_id"] == row["group_id"]].mean()
            assert row["m"] == pytest.approx(truth, rel=0.08)
        assert res.table.num_rows == 6

    def test_ci_reported(self, db):
        bound = bind_sql("SELECT SUM(value) AS s FROM big", db)
        res = PilotPlanner(db, seed=3).run(bound, ErrorSpec(0.05, 0.95))
        cell = res.estimate("s")
        assert cell.ci_low < res.scalar() < cell.ci_high
        assert cell.relative_half_width <= 0.05

    def test_composite_output_interval(self, db):
        bound = bind_sql(
            "SELECT SUM(value) / COUNT(*) AS ratio FROM big", db
        )
        res = PilotPlanner(db, seed=4).run(bound, ErrorSpec(0.05, 0.95))
        truth = db.table("big")["value"].mean()
        cell = res.estimate("ratio")
        assert cell.ci_low <= truth <= cell.ci_high

    def test_nonlinear_rejected(self, db):
        bound = bind_sql("SELECT MAX(value) AS m FROM big", db)
        with pytest.raises(UnsupportedQueryError):
            PilotPlanner(db).run(bound, ErrorSpec(0.05, 0.95))

    def test_count_distinct_rejected(self, db):
        bound = bind_sql("SELECT COUNT(DISTINCT group_id) AS d FROM big", db)
        with pytest.raises(UnsupportedQueryError):
            PilotPlanner(db).run(bound, ErrorSpec(0.05, 0.95))

    def test_plain_query_rejected(self, db):
        bound = bind_sql("SELECT value FROM big LIMIT 5", db)
        with pytest.raises(UnsupportedQueryError):
            PilotPlanner(db).run(bound, ErrorSpec(0.05, 0.95))

    def test_small_table_infeasible(self, db):
        bound = bind_sql("SELECT SUM(zone) AS s FROM tiny", db)
        with pytest.raises(InfeasiblePlanError):
            PilotPlanner(db).run(bound, ErrorSpec(0.05, 0.95))

    def test_hyper_selective_infeasible_or_exactish(self, db):
        bound = bind_sql(
            "SELECT SUM(value) AS s FROM big WHERE selector < 0.00001", db
        )
        with pytest.raises(InfeasiblePlanError):
            PilotPlanner(db, seed=5).run(bound, ErrorSpec(0.05, 0.95))

    def test_tight_spec_needs_more_data(self, db):
        bound = bind_sql("SELECT SUM(value) AS s FROM big", db)
        loose = PilotPlanner(db, seed=6).run(bound, ErrorSpec(0.10, 0.95))
        tight = PilotPlanner(db, seed=6).run(bound, ErrorSpec(0.02, 0.95))
        assert (
            tight.diagnostics["sampling_rate"]
            > loose.diagnostics["sampling_rate"]
        )

    def test_join_query_supported(self, db):
        bound = bind_sql(
            "SELECT t.zone AS zone, SUM(b.value) AS s FROM big b "
            "JOIN tiny t ON b.group_id = t.k GROUP BY t.zone",
            db,
        )
        res = PilotPlanner(db, seed=7).run(bound, ErrorSpec(0.1, 0.9))
        assert res.table.num_rows == 3


class TestQuickr:
    def test_scalar_estimate(self, db):
        bound = bind_sql("SELECT SUM(value) AS s FROM big", db)
        res = QuickrPlanner(db, seed=1).run(bound, ErrorSpec(0.05, 0.95))
        truth = db.table("big")["value"].sum()
        assert res.scalar() == pytest.approx(truth, rel=0.05)
        assert res.technique == "quickr"
        assert res.diagnostics["sampler"] == "uniform"

    def test_one_pass_cost_model(self, db):
        bound = bind_sql("SELECT SUM(value) AS s FROM big", db)
        res = QuickrPlanner(db, seed=2).run(bound, ErrorSpec(0.05, 0.95))
        assert res.fraction_scanned == 1.0
        assert 1.0 <= res.speedup < 3.0  # bounded gains: scan still happens

    def test_distinct_sampler_for_many_groups(self, rng):
        db = Database()
        cols = zipf_group_table(200_000, num_groups=800, zipf_s=1.5, seed=6)
        db.create_table("z", cols, block_size=512)
        bound = bind_sql(
            "SELECT group_id, COUNT(*) AS c FROM z GROUP BY group_id", db
        )
        res = QuickrPlanner(db, seed=3).run(bound, ErrorSpec(0.1, 0.9))
        assert res.diagnostics["sampler"] == "distinct"
        # Distinct sampler preserves every group.
        assert res.table.num_rows == len(np.unique(db.table("z")["group_id"]))

    def test_met_spec_flag(self, db):
        bound = bind_sql("SELECT SUM(value) AS s FROM big", db)
        res = QuickrPlanner(db, seed=4).run(bound, ErrorSpec(0.05, 0.95))
        assert isinstance(res.diagnostics["met_spec"], bool)

    def test_temp_table_cleaned_up(self, db):
        bound = bind_sql("SELECT SUM(value) AS s FROM big", db)
        QuickrPlanner(db, seed=5).run(bound, ErrorSpec(0.05, 0.95))
        assert not any(t.startswith("__quickr") for t in db.table_names)

    def test_join_through_sample(self, db):
        bound = bind_sql(
            "SELECT SUM(b.value) AS s FROM big b JOIN tiny t ON b.group_id = t.k",
            db,
        )
        res = QuickrPlanner(db, seed=6).run(bound, ErrorSpec(0.1, 0.9))
        truth = db.table("big")["value"].sum()
        assert res.scalar() == pytest.approx(truth, rel=0.1)

    def test_nonlinear_rejected(self, db):
        bound = bind_sql("SELECT MIN(value) AS m FROM big", db)
        with pytest.raises(UnsupportedQueryError):
            QuickrPlanner(db).run(bound, ErrorSpec(0.05, 0.95))


class TestOnlineAggregation:
    @pytest.fixture
    def table(self, rng):
        return Table({"v": rng.gamma(2.0, 10.0, 80_000)})

    def test_ci_shrinks(self, table):
        ola = OnlineAggregator(table, "v", "sum", seed=1)
        widths = [s.relative_half_width for s in ola.run(batch_size=5000)]
        assert widths[-1] < widths[0]
        assert widths[-1] < 0.01

    def test_final_snapshot_exactish(self, table):
        ola = OnlineAggregator(table, "v", "sum", seed=2)
        snap = ola.snapshot(table.num_rows)
        assert snap.value == pytest.approx(table["v"].sum())
        assert snap.relative_half_width < 1e-6

    def test_fixed_time_coverage(self, table):
        truth = table["v"].sum()
        hits = 0
        for seed in range(60):
            ola = OnlineAggregator(table, "v", "sum", seed=seed)
            snap = ola.snapshot(4000)
            hits += snap.ci_low <= truth <= snap.ci_high
        assert hits >= 50  # ~95% nominal with MC slack

    def test_run_to_target(self, table):
        ola = OnlineAggregator(table, "v", "sum", seed=3)
        snap = ola.run_to_target(0.02, batch_size=2000)
        assert snap.relative_half_width <= 0.02
        assert snap.fraction_seen < 1.0

    def test_avg_with_predicate(self, table):
        mask = table["v"] > 20
        ola = OnlineAggregator(table, "v", "avg", predicate_mask=mask, seed=4)
        snap = ola.snapshot(20_000)
        assert snap.value == pytest.approx(table["v"][mask].mean(), rel=0.05)

    def test_count_aggregate(self, table):
        mask = table["v"] > 20
        ola = OnlineAggregator(table, None, "count", predicate_mask=mask, seed=5)
        snap = ola.snapshot(20_000)
        assert snap.value == pytest.approx(mask.sum(), rel=0.05)

    def test_peeking_undercovers(self, rng):
        """Stopping at the first 'good-looking' CI costs coverage —
        the peeking pitfall the survey flags for OLA interfaces."""
        pop = rng.lognormal(1.0, 1.5, 30_000)
        peek = peeking_coverage(
            pop, target_relative_error=0.1, confidence=0.95,
            num_trials=60, batch_size=100, seed=1,
        )
        assert peek < 0.95

    def test_validation(self, table):
        with pytest.raises(Exception):
            OnlineAggregator(table, None, "sum")
        with pytest.raises(Exception):
            OnlineAggregator(table, "v", "median")


class TestRippleJoin:
    @pytest.fixture
    def tables(self, rng):
        n, d = 40_000, 500
        keys = rng.integers(0, d, n)
        left = Table({"k": keys, "v": rng.exponential(4, n)})
        right = Table({"k": np.arange(d), "w": rng.random(d)})
        truth = float(np.sum(left["v"] * right["w"][keys]))
        return left, right, truth

    def test_converges_to_truth(self, tables):
        left, right, truth = tables
        rj = RippleJoin(left, right, "k", "k", "v", "w", seed=1)
        last = None
        for snap in rj.run(batch=5000):
            last = snap
        assert rj.is_exhausted
        assert last.value == pytest.approx(truth, rel=1e-9)

    def test_intermediate_estimates_reasonable(self, tables):
        left, right, truth = tables
        rj = RippleJoin(left, right, "k", "k", "v", "w", seed=2)
        snap = rj.advance(10_000)
        assert snap.value == pytest.approx(truth, rel=0.3)

    def test_ci_shrinks(self, tables):
        left, right, truth = tables
        rj = RippleJoin(left, right, "k", "k", "v", "w", seed=3)
        early = rj.advance(2000)
        late = rj.advance(20_000)
        assert late.relative_half_width < early.relative_half_width

    def test_stop_at_target(self, tables):
        left, right, _ = tables
        rj = RippleJoin(left, right, "k", "k", "v", "w", seed=4)
        snaps = list(rj.run(batch=2000, target_relative_error=0.2))
        assert snaps[-1].relative_half_width <= 0.2
        assert not rj.is_exhausted


class TestRippleBatchEquivalence:
    """The vectorized batch advance must reproduce the scalar steps."""

    def _make_pair(self, seed=9, n_left=3_000, n_right=800, d=60):
        rng = np.random.default_rng(seed)
        left = Table(
            {"k": rng.integers(0, d, n_left), "v": rng.exponential(2, n_left)}
        )
        right = Table(
            {"k": rng.integers(0, d, n_right), "w": rng.random(n_right)}
        )
        mk = lambda: RippleJoin(left, right, "k", "k", "v", "w", seed=5)
        return mk(), mk()

    def _advance_scalar(self, rj, steps):
        # The event order the batch kernel encodes: left at time 2t,
        # right at 2t+1.
        for _ in range(steps):
            if rj._kl < rj.n_left:
                rj._step_left()
            if rj._kr < rj.n_right:
                rj._step_right()

    @pytest.mark.parametrize("batches", [[1], [7, 1, 250], [1000, 5000]])
    def test_state_matches_scalar_reference(self, batches):
        batch_rj, scalar_rj = self._make_pair()
        for steps in batches:
            batch_rj._advance_batch(steps)
            self._advance_scalar(scalar_rj, steps)
        assert batch_rj._kl == scalar_rj._kl
        assert batch_rj._kr == scalar_rj._kr
        assert batch_rj._join_sum == pytest.approx(
            scalar_rj._join_sum, rel=1e-12, abs=1e-9
        )
        assert batch_rj._left_seen.keys() == scalar_rj._left_seen.keys()
        for k, v in scalar_rj._left_seen.items():
            assert batch_rj._left_seen[k] == pytest.approx(v, rel=1e-12)
        for k, v in scalar_rj._right_seen.items():
            assert batch_rj._right_seen[k] == pytest.approx(v, rel=1e-12)
        b = np.concatenate(batch_rj._left_contrib)
        s = np.concatenate(scalar_rj._left_contrib)
        np.testing.assert_allclose(b, s, rtol=1e-12, atol=1e-9)
        snap_b, snap_s = batch_rj.snapshot(), scalar_rj.snapshot()
        assert snap_b.value == pytest.approx(snap_s.value, rel=1e-12)
        assert snap_b.ci_high == pytest.approx(snap_s.ci_high, rel=1e-9)

    def test_exhaustion_equivalent(self):
        batch_rj, scalar_rj = self._make_pair(n_left=150, n_right=400)
        batch_rj._advance_batch(10_000)
        self._advance_scalar(scalar_rj, 10_000)
        assert batch_rj.is_exhausted and scalar_rj.is_exhausted
        assert batch_rj._join_sum == pytest.approx(
            scalar_rj._join_sum, rel=1e-12
        )
