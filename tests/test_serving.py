"""Serving front-end unit tests: admission, budgets, overload, identity.

Concurrency-sensitive behaviours (queue bounds, priority order,
queue-deadline shedding) are pinned deterministically by blocking the
worker on an event-gated stub engine, so every assertion is about
*policy*, never about thread timing. The threaded chaos sweeps live in
``test_serving_chaos.py``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Database
from repro.core.errorspec import ErrorSpec
from repro.core.exceptions import QueryRefused, QueryRejected
from repro.engine.table import Table
from repro.resilience.deadline import ManualClock
from repro.resilience.ladder import LADDER_RUNGS, ResilientEngine
from repro.serving import (
    OverloadController,
    ServingFrontend,
    TenantBudgets,
    TokenBucket,
)

pytestmark = pytest.mark.stress


@pytest.fixture
def serving_db():
    rng = np.random.default_rng(11)
    db = Database()
    db.create_table(
        "events",
        {
            "v": rng.exponential(10.0, 20_000),
            "k": rng.integers(0, 8, 20_000),
        },
        block_size=512,
    )
    return db


class GatedEngine:
    """A stand-in engine whose queries block until released.

    Lets the tests fill the admission queue, reorder it, and advance the
    clock while the single worker is parked — turning scheduling races
    into deterministic sequences.
    """

    def __init__(self, database):
        self.database = database
        self.gate = threading.Event()
        self.started = threading.Event()
        self.served_queries = []
        self._real = ResilientEngine(database, warn_on_degrade=False)

    def sql(self, query, **kwargs):
        self.started.set()
        assert self.gate.wait(timeout=30.0), "test never released the gate"
        self.served_queries.append(query)
        return self._real.sql(query, **kwargs)


# ----------------------------------------------------------------------
# Token buckets / tenant budgets
# ----------------------------------------------------------------------
def test_token_bucket_charge_and_refill():
    clock = ManualClock()
    bucket = TokenBucket(capacity=100.0, refill_rate=10.0, clock=clock)
    assert bucket.try_charge(60.0)
    assert bucket.available() == pytest.approx(40.0)
    assert not bucket.try_charge(50.0), "partial admission must not happen"
    assert bucket.available() == pytest.approx(40.0), "failed charge is free"
    clock.advance(3.0)
    assert bucket.available() == pytest.approx(70.0)
    clock.advance(100.0)
    assert bucket.available() == pytest.approx(100.0), "capacity caps refill"


def test_token_bucket_settle_can_go_negative():
    bucket = TokenBucket(capacity=10.0, refill_rate=0.0, clock=ManualClock())
    assert bucket.try_charge(10.0)
    bucket.settle(-5.0)  # actual overshot the estimate
    assert bucket.available() == pytest.approx(-5.0)
    assert not bucket.try_charge(0.1), "debt delays the next admission"
    bucket.settle(100.0)
    assert bucket.available() == pytest.approx(10.0), "credit caps at capacity"


def test_tenant_budgets_default_unlimited_and_reconcile():
    clock = ManualClock()
    budgets = TenantBudgets(clock=clock)
    assert budgets.admit("anyone", 1e12), "unconfigured tenants are unlimited"
    budgets.configure("metered", capacity=100.0)
    assert budgets.admit("metered", 80.0)
    assert not budgets.admit("metered", 30.0)
    # Reconcile: the query actually cost 5, refund 75.
    budgets.reconcile("metered", estimate=80.0, actual=5.0)
    assert budgets.available("metered") == pytest.approx(95.0)
    snap = budgets.snapshot()["metered"]
    assert snap["admitted"] == 1 and snap["rejected"] == 1
    assert snap["refunded"] == pytest.approx(75.0)


# ----------------------------------------------------------------------
# Overload controller
# ----------------------------------------------------------------------
def test_overload_controller_steps_up_and_recovers():
    ctl = OverloadController(
        queue_capacity=10,
        shed_up_at=0.8,
        shed_down_at=0.2,
        window=8,
        recovery_patience=3,
    )
    assert ctl.level == 0 and ctl.entry_rung() is None
    ctl.note_queue_depth(9)  # hot: one step per evaluation
    assert ctl.level == 1 and ctl.entry_rung() == "stale_synopsis"
    ctl.note_queue_depth(9)
    ctl.note_queue_depth(9)
    assert ctl.level == 3 and ctl.entry_rung() == "partial_ola"
    ctl.note_queue_depth(9)
    assert ctl.level == 3, "max_level caps escalation"
    # Recovery needs `recovery_patience` consecutive calm evaluations.
    ctl.note_queue_depth(1)
    ctl.note_queue_depth(1)
    assert ctl.level == 3
    ctl.note_queue_depth(1)
    assert ctl.level == 2
    ctl.note_queue_depth(9)  # any hot evaluation resets the calm streak
    assert ctl.level == 3
    assert ctl.steps_up == 4 and ctl.steps_down == 1


def test_overload_controller_miss_rate_signal():
    ctl = OverloadController(
        queue_capacity=100, miss_rate_threshold=0.5, window=4
    )
    for _ in range(3):
        ctl.record_outcome(deadline_missed=False)
    assert ctl.level == 0
    ctl.record_outcome(deadline_missed=True)
    ctl.record_outcome(deadline_missed=True)  # window = [F,F,T,T] -> 0.5
    assert ctl.level == 1
    assert ctl.entry_rung() in LADDER_RUNGS


# ----------------------------------------------------------------------
# Admission
# ----------------------------------------------------------------------
def test_queue_full_rejects_typed(serving_db):
    engine = GatedEngine(serving_db)
    fe = ServingFrontend(engine=engine, workers=1, max_queue=2)
    try:
        first = fe.submit("SELECT SUM(v) FROM events")
        assert engine.started.wait(timeout=10.0)
        t1 = fe.submit("SELECT SUM(v) FROM events")
        t2 = fe.submit("SELECT COUNT(*) FROM events")
        with pytest.raises(QueryRejected) as exc_info:
            fe.submit("SELECT SUM(v) FROM events")
        assert exc_info.value.reason == "overload"
        engine.gate.set()
        for t in (first, t1, t2):
            assert t.result(timeout=30.0) is not None
    finally:
        engine.gate.set()
        fe.close()


def test_budget_rejection_is_typed_and_free(serving_db):
    fe = ServingFrontend(serving_db, workers=1, max_queue=4)
    try:
        fe.budgets.configure("tiny", capacity=1.0)
        with pytest.raises(QueryRejected) as exc_info:
            fe.submit("SELECT SUM(v) FROM events", tenant="tiny")
        assert exc_info.value.reason == "budget"
        assert exc_info.value.tenant == "tiny"
        assert fe.budgets.available("tiny") == pytest.approx(1.0)
    finally:
        fe.close()


def test_budget_reconciled_from_actuals(serving_db):
    fe = ServingFrontend(serving_db, workers=1, max_queue=4)
    try:
        estimate = fe.estimate_cost(
            "SELECT SUM(v) FROM events ERROR WITHIN 20% CONFIDENCE 95%"
        )
        fe.budgets.configure("t", capacity=2 * estimate)
        result = fe.sql(
            "SELECT SUM(v) FROM events ERROR WITHIN 20% CONFIDENCE 95%",
            tenant="t",
            seed=5,
            timeout=60.0,
        )
        actual = result.stats.simulated_cost(serving_db.cost_params).total
        assert actual < estimate, "approximation must undercut the scan bound"
        assert fe.budgets.available("t") == pytest.approx(
            2 * estimate - actual
        ), "tenant pays measured actuals, not the admission estimate"
    finally:
        fe.close()


def test_unknown_priority_rejected(serving_db):
    fe = ServingFrontend(serving_db, workers=1, max_queue=2)
    try:
        with pytest.raises(ValueError):
            fe.submit("SELECT SUM(v) FROM events", priority="turbo")
    finally:
        fe.close()


def test_queue_deadline_sheds_stale_queries(serving_db):
    clock = ManualClock()
    engine = GatedEngine(serving_db)
    fe = ServingFrontend(
        engine=engine,
        workers=1,
        max_queue=4,
        queue_deadline_s=1.0,
        clock=clock,
    )
    try:
        running = fe.submit("SELECT SUM(v) FROM events")
        assert engine.started.wait(timeout=10.0)
        stale = fe.submit("SELECT COUNT(*) FROM events")
        clock.advance(5.0)  # the queued query is now past its deadline
        engine.gate.set()
        err = stale.exception(timeout=30.0)
        assert isinstance(err, QueryRejected)
        assert err.reason == "queue_deadline"
        assert stale.outcome == "rejected"
        assert running.result(timeout=30.0) is not None
    finally:
        engine.gate.set()
        fe.close()


def test_priority_order_is_deterministic(serving_db):
    """Interactive beats batch; ties break by the seeded splitmix draw."""

    def service_order(submit_order):
        engine = GatedEngine(serving_db)
        fe = ServingFrontend(engine=engine, workers=1, max_queue=8, seed=3)
        try:
            blocker = fe.submit("SELECT SUM(v) FROM events")
            assert engine.started.wait(timeout=10.0)
            for query, priority, qid in submit_order:
                fe.submit(query, priority=priority, query_id=qid)
            engine.gate.set()
            assert fe.drain(timeout=60.0)
            assert blocker.result(timeout=5.0) is not None
            return engine.served_queries[1:]  # drop the blocker
        finally:
            engine.gate.set()
            fe.close()

    items = [
        ("SELECT COUNT(*) FROM events", "batch", 101),
        ("SELECT SUM(v) FROM events", "interactive", 102),
        ("SELECT SUM(k) FROM events", "interactive", 103),
        ("SELECT COUNT(*) FROM events WHERE v > 1", "batch", 104),
    ]
    order_a = service_order(items)
    order_b = service_order(list(reversed(items)))
    interactive = {q for q, p, _ in items if p == "interactive"}
    assert set(order_a[:2]) == interactive, "interactive served first"
    assert order_a == order_b, (
        "service order must be a function of (priority, seed, query_id), "
        "not of submission order"
    )


def test_close_rejects_queued_queries(serving_db):
    engine = GatedEngine(serving_db)
    fe = ServingFrontend(engine=engine, workers=1, max_queue=4)
    running = fe.submit("SELECT SUM(v) FROM events")
    assert engine.started.wait(timeout=10.0)
    queued = fe.submit("SELECT COUNT(*) FROM events")
    engine.gate.set()
    fe.close()
    assert isinstance(queued.exception(timeout=5.0), QueryRejected)
    assert running.result(timeout=5.0) is not None
    with pytest.raises(QueryRejected):
        fe.submit("SELECT SUM(v) FROM events")


# ----------------------------------------------------------------------
# Identity and shedding
# ----------------------------------------------------------------------
def _tables_equal(a: Table, b: Table) -> bool:
    if a.column_names != b.column_names or a.num_rows != b.num_rows:
        return False
    return all(np.array_equal(a[c], b[c]) for c in a.column_names)


def test_no_overload_is_bitwise_identical_to_database(serving_db):
    """With no pressure, the frontend is a pass-through: same bits out."""
    queries = [
        ("SELECT SUM(v) AS s, COUNT(*) AS c FROM events WHERE v > 3", None),
        (
            "SELECT SUM(v) AS s FROM events "
            "ERROR WITHIN 20% CONFIDENCE 95%",
            None,
        ),
        (
            "SELECT k, SUM(v) AS s FROM events GROUP BY k",
            ErrorSpec(relative_error=0.2, confidence=0.95),
        ),
    ]
    fe = ServingFrontend(serving_db, workers=2, max_queue=16)
    try:
        for query, spec in queries:
            served = fe.sql(query, spec=spec, seed=9, timeout=60.0)
            direct = serving_db.sql(query, seed=9, spec=spec)
            assert _tables_equal(served.table, direct.table), query
            if hasattr(direct, "ci_low"):
                for alias in direct.ci_low:
                    assert np.array_equal(
                        served.ci_low[alias], direct.ci_low[alias]
                    )
                    assert np.array_equal(
                        served.ci_high[alias], direct.ci_high[alias]
                    )
    finally:
        fe.close()


def test_shed_answers_carry_provenance(serving_db):
    controller = OverloadController(queue_capacity=4)
    for _ in range(2):
        controller.note_queue_depth(4)  # force level 2
    assert controller.entry_rung() == "cheaper_technique"
    fe = ServingFrontend(
        serving_db, workers=1, max_queue=4, controller=controller
    )
    try:
        ticket = fe.submit(
            "SELECT SUM(v) FROM events ERROR WITHIN 20% CONFIDENCE 95%",
            seed=2,
        )
        result = ticket.result(timeout=60.0)
        assert ticket.shed_to == "cheaper_technique"
        skipped = [p for p in result.provenance if p["outcome"] == "skipped"]
        assert [p["rung"] for p in skipped] == ["requested", "stale_synopsis"]
        assert all(p["shed_to"] == "cheaper_technique" for p in skipped)
        served = [p for p in result.provenance if p["outcome"] == "ok"]
        assert served, "a shed query still ends in an answer"
    finally:
        fe.close()


def test_no_shed_flag_bypasses_controller(serving_db):
    controller = OverloadController(queue_capacity=4)
    for _ in range(3):
        controller.note_queue_depth(4)
    fe = ServingFrontend(
        serving_db, workers=1, max_queue=4, controller=controller
    )
    try:
        ticket = fe.submit(
            "SELECT SUM(v) FROM events ERROR WITHIN 20% CONFIDENCE 95%",
            seed=2,
            no_shed=True,
        )
        result = ticket.result(timeout=60.0)
        assert ticket.shed_to is None
        assert not any(
            "shed_to" in p for p in result.provenance
        ), "no_shed answers never carry shed provenance"
    finally:
        fe.close()


def test_unparseable_query_fails_typed_not_hung(serving_db):
    fe = ServingFrontend(serving_db, workers=1, max_queue=4)
    try:
        ticket = fe.submit("THIS IS NOT SQL")
        err = ticket.exception(timeout=30.0)
        assert err is not None and not isinstance(err, QueryRejected)
        assert ticket.outcome == "refused"
    finally:
        fe.close()


def test_entry_rung_validation():
    db = Database()
    db.create_table("t", {"x": np.arange(10.0)})
    engine = ResilientEngine(db, warn_on_degrade=False)
    with pytest.raises(ValueError):
        engine.sql("SELECT SUM(x) FROM t", entry_rung="nonsense")
    # An entry rung that does not apply (spec-less query has only the
    # exact rung) is ignored, never refused.
    result = engine.sql("SELECT SUM(x) FROM t", entry_rung="partial_ola")
    assert float(result.table["sum(x)"][0]) == pytest.approx(45.0)


def test_refusal_still_records_outcome(serving_db):
    """A query the ladder refuses resolves the ticket typed."""
    fe = ServingFrontend(serving_db, workers=1, max_queue=4)
    try:
        # MIN is not approximable and partial OLA cannot serve it; with
        # an impossible spec and no synopses the ladder lands on exact —
        # so use a query no rung can serve: aggregate over missing table.
        ticket = fe.submit("SELECT SUM(nope) FROM missing")
        err = ticket.exception(timeout=30.0)
        assert err is not None
        assert ticket.outcome in ("refused", "rejected")
        assert isinstance(err, (QueryRefused, Exception))
    finally:
        fe.close()
