"""Tests for HT estimation, bootstrap, propagation, and cluster variance."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro import ErrorSpecError
from repro.audit.acceptance import coverage_lower_bound, mc_mean_within
from repro.engine.expressions import BinaryOp, Column, Literal
from repro.estimators.bootstrap import (
    bootstrap_ci,
    coverage_probability,
    poissonized_bootstrap_total,
)
from repro.estimators.horvitz_thompson import ht_count, ht_mean, ht_total, scale_up_weights
from repro.estimators.propagation import (
    allocate_expression,
    allocate_for_product,
    allocate_for_quotient,
    allocate_for_sum,
    propagate_difference,
    propagate_product,
    propagate_quotient,
    propagate_sum,
)
from repro.estimators.subsampling import (
    block_sample_avg,
    block_sample_sum,
    design_effect_from_rows,
    jackknife_blocks,
    per_block_totals,
)


class TestHorvitzThompson:
    def test_uniform_probs_recover_scaling(self):
        y = np.array([1.0, 2.0, 3.0])
        est = ht_total(y, np.full(3, 0.1))
        assert est.value == pytest.approx(60.0)

    @pytest.mark.statistical
    def test_unbiased_under_nonuniform_design(self, rng):
        values = rng.exponential(10, 5000)
        pi = np.clip(values / values.max(), 0.02, 1.0)
        totals = []
        for _ in range(150):
            keep = rng.random(5000) < pi
            totals.append(ht_total(values[keep], pi[keep]).value)
        assert mc_mean_within(totals, values.sum())

    def test_count(self):
        est = ht_count(np.full(10, 0.5))
        assert est.value == pytest.approx(20.0)

    def test_mean_weighted(self):
        # two strata: rare rows (pi=0.1) valued 100, common (pi=1) valued 0
        values = np.array([100.0, 0.0, 0.0])
        pi = np.array([0.1, 1.0, 1.0])
        est = ht_mean(values, pi)
        assert est.value == pytest.approx(1000.0 / 12.0)

    def test_invalid_probs(self):
        with pytest.raises(ValueError):
            ht_total(np.array([1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            ht_total(np.array([1.0]), np.array([1.5]))

    def test_alignment(self):
        with pytest.raises(ValueError):
            ht_total(np.array([1.0]), np.array([0.5, 0.5]))

    def test_scale_up_weights(self):
        est = scale_up_weights(np.array([2.0, 4.0]), np.array([10.0, 10.0]))
        assert est.value == pytest.approx(60.0)

    def test_weights_below_one_rejected(self):
        with pytest.raises(ValueError):
            scale_up_weights(np.array([1.0]), np.array([0.5]))


class TestBootstrap:
    def test_mean_ci_contains_truth_usually(self, rng):
        pop = rng.normal(50, 10, 2000)
        res = bootstrap_ci(pop[:400], np.mean, num_replicates=300, rng=rng)
        assert res.ci_low < 50 < res.ci_high

    def test_point_estimate_is_statistic(self, rng):
        data = rng.random(100)
        res = bootstrap_ci(data, np.median, num_replicates=50, rng=rng)
        assert res.value == pytest.approx(np.median(data))

    def test_empty_sample(self):
        res = bootstrap_ci(np.array([]), np.mean, num_replicates=10)
        assert math.isnan(res.value)

    def test_poissonized_total(self, rng):
        pop = rng.exponential(5, 20_000)
        rate = 0.05
        mask = rng.random(len(pop)) < rate
        res = poissonized_bootstrap_total(pop[mask], rate, num_replicates=300, rng=rng)
        assert res.ci_low < pop.sum() < res.ci_high

    @pytest.mark.statistical
    def test_coverage_probability_interface(self, rng):
        pop = rng.normal(0, 1, 3000)

        def interval(sample, r):
            res = bootstrap_ci(sample, np.mean, num_replicates=100, rng=r)
            return res.ci_low, res.ci_high

        cov = coverage_probability(pop, np.mean, interval, 200, num_trials=40)
        assert coverage_lower_bound(40, 0.95) / 40 <= cov <= 1.0


class TestPropagation:
    @given(hst.floats(0, 0.3), hst.floats(0, 0.3))
    @settings(max_examples=60, deadline=None)
    def test_product_bound_holds(self, e1, e2):
        # worst case realized at x(1+e1) * y(1+e2)
        bound = propagate_product([e1, e2])
        realized = (1 + e1) * (1 + e2) - 1
        assert realized <= bound + 1e-12

    @given(hst.floats(0, 0.3), hst.floats(0, 0.3))
    @settings(max_examples=60, deadline=None)
    def test_quotient_bound_holds(self, en, ed):
        bound = propagate_quotient(en, ed)
        # worst case: numerator high, denominator low
        realized = (1 + en) / (1 - ed) - 1
        assert realized <= bound + 1e-9

    def test_quotient_denominator_blowup(self):
        assert propagate_quotient(0.01, 1.0) == math.inf

    def test_sum_bound(self):
        assert propagate_sum([0.1, 0.02]) == pytest.approx(0.1)

    def test_difference_cancellation(self):
        assert propagate_difference(0.01, 0.01, 100.0, 99.9) > 1.0
        assert propagate_difference(0.01, 0.01, 100.0, 100.0) == math.inf

    @given(hst.floats(0.01, 0.5), hst.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_product_allocation_inverts(self, target, k):
        per = allocate_for_product(target, k)
        assert propagate_product([per] * k) <= target + 1e-9

    @given(hst.floats(0.01, 0.5))
    @settings(max_examples=60, deadline=None)
    def test_quotient_allocation_inverts(self, target):
        per = allocate_for_quotient(target)
        assert propagate_quotient(per, per) <= target + 1e-9

    def test_sum_allocation_full_budget(self):
        assert allocate_for_sum(0.07) == 0.07

    def test_negative_error_rejected(self):
        with pytest.raises(ErrorSpecError):
            propagate_product([-0.1])

    def test_allocate_expression_quotient(self):
        expr = BinaryOp("/", Column("a"), Column("b"))
        alloc = allocate_expression(expr, 0.1)
        assert alloc["a"] == pytest.approx(0.1 / 2.1)
        assert alloc["b"] == pytest.approx(0.1 / 2.1)

    def test_allocate_expression_bare_column(self):
        alloc = allocate_expression(Column("a"), 0.05)
        assert alloc == {"a": 0.05}

    def test_allocate_expression_takes_min(self):
        # a appears both bare-ish and inside a product: keep the tighter.
        expr = BinaryOp("+", Column("a"), BinaryOp("*", Column("a"), Column("b")))
        alloc = allocate_expression(expr, 0.1)
        assert alloc["a"] <= 0.1


class TestClusterVariance:
    def test_per_block_totals(self):
        sums, counts = per_block_totals(
            np.array([1.0, 2.0, 3.0, 4.0]), np.array([0, 0, 7, 7])
        )
        assert sums.tolist() == [3.0, 7.0]
        assert counts.tolist() == [2.0, 2.0]

    def test_block_sum_estimates_total(self, rng):
        # 100 blocks of 10 rows; sample 30 block sums.
        block_sums = rng.normal(100, 10, 100)
        sampled = block_sums[:30]
        est = block_sample_sum(sampled, 100)
        assert est.value == pytest.approx(100 * sampled.mean())
        assert est.variance > 0

    def test_block_sum_census_has_zero_variance(self, rng):
        block_sums = rng.normal(100, 10, 50)
        est = block_sample_sum(block_sums, 50)
        assert est.variance == pytest.approx(0.0, abs=1e-9)

    def test_block_avg_ratio(self, rng):
        sums = rng.normal(500, 20, 40)
        counts = np.full(40, 10.0)
        est = block_sample_avg(sums, counts, 200)
        assert est.value == pytest.approx(sums.sum() / counts.sum())

    def test_design_effect_clustered_vs_shuffled(self, rng):
        n, bs = 20_000, 100
        blocks = np.repeat(np.arange(n // bs), bs)
        clustered = np.repeat(rng.normal(0, 10, n // bs), bs) + rng.normal(0, 0.1, n)
        shuffled = rng.permutation(clustered)
        deff_clustered = design_effect_from_rows(clustered, blocks)
        deff_shuffled = design_effect_from_rows(shuffled, blocks)
        assert deff_clustered > 20
        assert deff_shuffled < 3

    def test_jackknife_linear_statistic_matches_classic(self, rng):
        vals = rng.normal(10, 2, 30)
        jk = jackknife_blocks(vals, np.mean)
        classic = np.var(vals, ddof=1) / len(vals)
        assert jk.variance == pytest.approx(classic, rel=0.05)

    def test_jackknife_single_block(self):
        est = jackknife_blocks(np.array([1.0]), np.mean)
        assert est.variance == math.inf
