"""Trace-conformance suite: the observability layer's contract.

Four guarantees, pinned here:

1. **Schema conformance** — every span any execution path emits (plain
   AQP, degradation ladder, scatter-gather, EXPLAIN ANALYZE, chaos)
   validates against the committed JSON schema
   (``tests/golden/span_schema.json``), and span/parent ids form a
   consistent tree.
2. **Structural equivalence** — the fused and materializing executors
   emit structurally identical span trees (modulo the fused-only
   ``kernel`` span), and a sharded run's tree is invariant to the shard
   count once ``shard.<i>`` subtrees are collapsed.
3. **Tracing off is free** — with no tracer installed (the default),
   results, CIs, and ``ExecutionStats`` are bitwise-identical to a
   traced run of the same seed: instrumentation touches no RNG, no
   accounting, no clocks that feed results.
4. **Golden rung payloads** — the exact provenance records produced by
   forcing each of the five ladder rungs are pinned in
   ``tests/golden/provenance_rungs.json``. Regenerate both golden files
   with ``REPRO_REGOLD=1 pytest tests/test_trace_conformance.py``.
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np
import pytest

from repro import Database
from repro.engine.table import Table
from repro.obs.schema import SPAN_SCHEMA, validate_span
from repro.obs.trace import Tracer, trace_scope, tracer_signature
from repro.offline.catalog import SampleEntry, SynopsisCatalog
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    LADDER_RUNGS,
    ResilientEngine,
    inject,
)
from repro.sampling.row import srs_sample
from repro.sharding import ScatterGatherExecutor, ShardedTable
from repro.sql.binder import bind_sql

pytestmark = pytest.mark.obs

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
REGOLD = os.environ.get("REPRO_REGOLD") == "1"

#: queries covering the plan shapes the executors distinguish
CORPUS = [
    "SELECT SUM(x) AS s FROM f",
    "SELECT COUNT(*) AS c FROM f WHERE x > 0",
    "SELECT AVG(y) AS a FROM f WHERE g < 3",
    "SELECT g, SUM(y) AS s FROM f GROUP BY g",
    "SELECT SUM(x) AS s, COUNT(*) AS c FROM f WHERE y > 1",
]

APPROX_CORPUS = [
    "SELECT SUM(x) AS s FROM f ERROR WITHIN 10% CONFIDENCE 95%",
    "SELECT AVG(y) AS a FROM f ERROR WITHIN 10% CONFIDENCE 95%",
]


def _fuzz_db(seed: int) -> Database:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2_000, 6_000))
    db = Database()
    db.create_table(
        "f",
        {
            "x": rng.normal(5.0, 2.0, n),
            "y": rng.exponential(10.0, n),
            "g": rng.integers(0, 5, n),
        },
        block_size=int(rng.choice([128, 256, 512])),
    )
    return db


def _trace(fn):
    """Run ``fn`` under a fresh tracer; return (return_value, tracer)."""
    tracer = Tracer()
    with trace_scope(tracer):
        value = fn()
    return value, tracer


def _stats_doc(result_or_stats):
    stats = getattr(result_or_stats, "stats", result_or_stats)
    return stats.to_dict()


def _table_columns(table: Table):
    return {name: np.asarray(table[name]) for name in table.column_names}


def assert_tables_bitwise_equal(a: Table, b: Table) -> None:
    assert a.column_names == b.column_names
    for name, col in _table_columns(a).items():
        other = _table_columns(b)[name]
        assert col.dtype == other.dtype, name
        assert np.array_equal(col, other), name


# ----------------------------------------------------------------------
# 1. Schema conformance + tree consistency
# ----------------------------------------------------------------------

def assert_trace_conforms(tracer: Tracer) -> None:
    """Every root validates against the schema; ids form one sane tree."""
    assert tracer.roots, "trace is empty"
    for root in tracer.roots:
        errors = validate_span(root.to_dict())
        assert errors == [], errors
    ids = [s.span_id for s in tracer.walk()]
    assert len(ids) == len(set(ids)), "span ids not unique"
    reachable = set()

    def visit(node):
        reachable.add(node.span_id)
        for child in node.children:
            assert child.parent_id == node.span_id
            visit(child)

    for root in tracer.roots:
        assert root.parent_id is None
        visit(root)
    assert reachable == set(ids), "spans detached from every root"
    for s in tracer.walk():
        assert s.end is not None, f"span {s.name} never finished"
        assert s.end >= s.start


class TestSchemaConformance:
    @pytest.fixture(scope="class")
    def db(self):
        return _fuzz_db(100)

    @pytest.mark.parametrize("sql", CORPUS + APPROX_CORPUS)
    def test_aqp_engine_traces_conform(self, db, sql):
        result, tracer = _trace(lambda: db.sql(sql, seed=7))
        assert_trace_conforms(tracer)
        (query_span,) = tracer.find("query")
        assert query_span.attributes["engine"] == "aqp"
        assert query_span.attributes["stats"] == _stats_doc(result)

    @pytest.mark.parametrize("sql", CORPUS + APPROX_CORPUS)
    def test_ladder_traces_conform(self, db, sql):
        engine = ResilientEngine(db, warn_on_degrade=False)
        result, tracer = _trace(lambda: engine.sql(sql, seed=7))
        assert_trace_conforms(tracer)
        (query_span,) = tracer.find("query")
        assert query_span.attributes["engine"] == "ladder"
        assert query_span.attributes["rung"] in LADDER_RUNGS
        served = tracer.find("degrade")[-1]
        assert served.attributes["rung"] == query_span.attributes["rung"]
        assert result.provenance[-1]["outcome"] == "ok"

    @pytest.mark.parametrize("sql", CORPUS)
    def test_sharded_traces_conform(self, db, sql):
        sharded = ShardedTable.from_table(db.table("f"), 3)
        executor = ScatterGatherExecutor(sharded, max_workers=2)
        _, tracer = _trace(lambda: executor.sql(sql, seed=7))
        assert_trace_conforms(tracer)
        (query_span,) = tracer.find("query")
        assert query_span.attributes["engine"] == "scatter_gather"
        shard_spans = [
            s for s in tracer.walk() if s.name.startswith("shard.")
        ]
        assert len(shard_spans) == 3
        for s in shard_spans:
            assert s.attributes["shard_status"] == "served"
            assert s.parent_id == query_span.span_id

    def test_explain_analyze_trace_conforms(self, db):
        er = db.sql("EXPLAIN ANALYZE " + CORPUS[0], seed=7)
        assert_trace_conforms(er.tracer)

    def test_chaos_trace_conforms(self, db):
        engine = ResilientEngine(db, warn_on_degrade=False)
        injector = FaultInjector(
            [FaultSpec(site="ladder.requested", kind="error")], seed=5
        )

        def run():
            with inject(injector):
                return engine.sql(APPROX_CORPUS[0], seed=7)

        _, tracer = _trace(run)
        assert_trace_conforms(tracer)
        assert tracer.find("fault"), "injected fault left no fault span"
        for fault in tracer.find("fault"):
            assert fault.status == "error"
            assert fault.attributes["seed"] == 5


# ----------------------------------------------------------------------
# 2. Structural equivalence
# ----------------------------------------------------------------------

class TestStructuralEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("sql", CORPUS)
    def test_fused_matches_materializing(self, sql, seed):
        """Same query, same seed: the two executors must emit the same
        span tree modulo the fused-only ``kernel`` span."""
        db = _fuzz_db(seed)
        plan = bind_sql(sql, db).plan
        (_, fused_stats), fused_tracer = _trace(
            lambda: db.execute(plan, optimize=False, seed=seed)
        )
        (_, mat_stats), mat_tracer = _trace(
            lambda: db.execute(plan, optimize=False, seed=seed, fused=False)
        )
        assert tracer_signature(
            fused_tracer, ignore=("kernel",)
        ) == tracer_signature(mat_tracer)
        # The structural match is not vacuous: both paths really scanned.
        assert fused_tracer.find("scan") and mat_tracer.find("scan")
        assert fused_stats.to_dict() == mat_stats.to_dict()

    @pytest.mark.parametrize("sql", CORPUS)
    def test_full_query_trees_match_through_sql_front_end(self, sql):
        """End-to-end (parse/bind/optimize included) the trees agree."""
        db = _fuzz_db(11)
        _, traced = _trace(lambda: db.sql(sql, seed=3))
        plan = bind_sql(sql, db).plan
        _, fused_tracer = _trace(lambda: db.execute(plan, seed=3))
        _, mat_tracer = _trace(
            lambda: db.execute(plan, seed=3, fused=False)
        )
        assert tracer_signature(
            fused_tracer, ignore=("kernel",)
        ) == tracer_signature(mat_tracer)
        # and the engine-level trace embeds the same executor subtree
        names = [s.name for s in traced.walk()]
        assert names[0] == "query"
        assert "scan" in names

    @pytest.mark.parametrize("sql", CORPUS)
    def test_sharded_tree_invariant_to_shard_count(self, sql):
        """Collapsing ``shard.<i>`` subtrees makes the trace independent
        of the partitioning — 2-way and 4-way runs look identical."""
        signatures = []
        for num_shards in (2, 4):
            db = _fuzz_db(21)
            sharded = ShardedTable.from_table(db.table("f"), num_shards)
            executor = ScatterGatherExecutor(sharded, max_workers=2)
            _, tracer = _trace(lambda: executor.sql(sql, seed=5))
            signatures.append(
                tracer_signature(tracer, collapse_shards=True)
            )
        assert signatures[0] == signatures[1]
        # The collapsed tree has exactly one shard.* leaf under the query.
        (query_sig,) = signatures[0]
        child_names = [c[0] for c in query_sig[2]]
        assert child_names.count("shard.*") == 1


# ----------------------------------------------------------------------
# 3. Tracing off is bitwise-free
# ----------------------------------------------------------------------

class TestTracingOffIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("sql", CORPUS + APPROX_CORPUS)
    def test_traced_and_untraced_runs_are_bitwise_identical(self, sql, seed):
        db = _fuzz_db(seed + 50)
        baseline = db.sql(sql, seed=seed)
        traced, tracer = _trace(lambda: db.sql(sql, seed=seed))
        repeat = db.sql(sql, seed=seed)
        assert tracer.roots, "tracer saw nothing — scope not threaded"
        for other in (traced, repeat):
            assert_tables_bitwise_equal(baseline.table, other.table)
            assert _stats_doc(baseline) == _stats_doc(other)
        if hasattr(baseline, "ci_low"):
            for alias in baseline.ci_low:
                for side in ("ci_low", "ci_high"):
                    assert np.array_equal(
                        getattr(baseline, side)[alias],
                        getattr(traced, side)[alias],
                    ), (alias, side)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_ladder_identity(self, seed):
        db = _fuzz_db(seed + 70)
        engine = ResilientEngine(db, warn_on_degrade=False)
        sql = APPROX_CORPUS[0]
        baseline = engine.sql(sql, seed=seed)
        traced, _ = _trace(lambda: engine.sql(sql, seed=seed))
        assert_tables_bitwise_equal(baseline.table, traced.table)
        assert _stats_doc(baseline) == _stats_doc(traced)
        assert baseline.provenance == traced.provenance

    def test_sharded_identity(self):
        db = _fuzz_db(90)
        sharded = ShardedTable.from_table(db.table("f"), 3)
        sql = CORPUS[0]
        baseline = ScatterGatherExecutor(sharded, max_workers=2).sql(
            sql, seed=1
        )
        traced, _ = _trace(
            lambda: ScatterGatherExecutor(sharded, max_workers=2).sql(
                sql, seed=1
            )
        )
        assert_tables_bitwise_equal(baseline.table, traced.table)
        assert _stats_doc(baseline) == _stats_doc(traced)


# ----------------------------------------------------------------------
# 4. Golden files
# ----------------------------------------------------------------------

GOLDEN_SQL = "SELECT SUM(price) AS s FROM sales ERROR WITHIN 10% CONFIDENCE 95%"


def _golden_world() -> Database:
    """Deterministic world where every rung *can* serve: a table big
    enough that pilot/quickr sampling is profitable, plus a registered
    stale sample (fails freshness, so the stale rung has something to
    widen)."""
    rng = np.random.default_rng(1234)
    prices = rng.lognormal(3.0, 1.0, 100_000)
    db = Database()
    db.create_table("sales", {"price": prices})
    prefix = 80_000
    sample = srs_sample(
        Table({"price": prices[:prefix]}, name="sales"),
        2000,
        np.random.default_rng(99),
    )
    SynopsisCatalog(db).add_sample(
        SampleEntry(
            table="sales", sample=sample, kind="uniform",
            built_at_rows=prefix,
        )
    )
    return db


def _force_rung(target: str):
    """Serve the golden query from exactly ``target`` by injecting
    deterministic error faults at every rung above it."""
    db = _golden_world()
    engine = ResilientEngine(db, warn_on_degrade=False)
    above = LADDER_RUNGS[: LADDER_RUNGS.index(target)]
    injector = FaultInjector(
        [FaultSpec(site=f"ladder.{rung}", kind="error") for rung in above],
        seed=7,
    )
    with inject(injector):
        return engine.sql(GOLDEN_SQL, seed=42)


@pytest.fixture(scope="module")
def rung_payloads():
    return {rung: _force_rung(rung).provenance for rung in LADDER_RUNGS}


class TestGoldenFiles:
    def test_span_schema_golden_matches_code(self):
        path = GOLDEN_DIR / "span_schema.json"
        if REGOLD:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(
                json.dumps(SPAN_SCHEMA, indent=2, sort_keys=True) + "\n"
            )
        committed = json.loads(path.read_text())
        assert committed == SPAN_SCHEMA, (
            "span schema drifted from tests/golden/span_schema.json — "
            "a trace format change must be deliberate; regenerate with "
            "REPRO_REGOLD=1 and review the diff"
        )

    def test_provenance_rungs_golden(self, rung_payloads):
        path = GOLDEN_DIR / "provenance_rungs.json"
        if REGOLD:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(
                json.dumps(rung_payloads, indent=2, sort_keys=True) + "\n"
            )
        committed = json.loads(path.read_text())
        assert set(committed) == set(LADDER_RUNGS)
        for rung in LADDER_RUNGS:
            assert rung_payloads[rung] == committed[rung], (
                f"provenance payload for forced rung {rung!r} drifted "
                "from the golden file; regenerate with REPRO_REGOLD=1 "
                "and review the diff"
            )

    @pytest.mark.parametrize("rung", LADDER_RUNGS)
    def test_forced_rung_serves_from_target(self, rung_payloads, rung):
        payload = rung_payloads[rung]
        assert payload[-1]["rung"] == rung
        assert payload[-1]["outcome"] == "ok"
        # Every rung above the target failed with the injected fault.
        above = LADDER_RUNGS[: LADDER_RUNGS.index(rung)]
        failed = [p for p in payload if p["outcome"] == "failed"]
        assert [p["rung"] for p in failed] == list(above)
        for p in failed:
            assert "InjectedFault" in p["error"]
        assert payload[-1]["degraded"] == (len(above) > 0)
