"""Tests for the SQL parser."""

import pytest

from repro import SQLSyntaxError
from repro.sql import ast as A
from repro.sql.parser import parse_sql


class TestSelectStructure:
    def test_simple(self):
        stmt = parse_sql("SELECT a FROM t")
        assert stmt.from_table.name == "t"
        assert isinstance(stmt.items[0].expr, A.ColumnRef)

    def test_star(self):
        stmt = parse_sql("SELECT * FROM t")
        assert stmt.items[0].expr.name == "*"

    def test_aliases(self):
        stmt = parse_sql("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_table_alias(self):
        stmt = parse_sql("SELECT a FROM tbl AS t")
        assert stmt.from_table.alias == "t"
        stmt2 = parse_sql("SELECT a FROM tbl t2")
        assert stmt2.from_table.alias == "t2"

    def test_where_group_having_order_limit(self):
        stmt = parse_sql(
            "SELECT g, SUM(v) AS s FROM t WHERE v > 0 GROUP BY g "
            "HAVING SUM(v) > 10 ORDER BY s DESC LIMIT 5"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 5

    def test_trailing_semicolon(self):
        assert parse_sql("SELECT a FROM t;").limit is None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError, match="trailing"):
            parse_sql("SELECT a FROM t extra nonsense stuff")


class TestJoins:
    def test_inner_join(self):
        stmt = parse_sql("SELECT a FROM l JOIN r ON l.k = r.k")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].how == "inner"

    def test_left_join(self):
        stmt = parse_sql("SELECT a FROM l LEFT JOIN r ON l.k = r.k")
        assert stmt.joins[0].how == "left"

    def test_multi_join(self):
        stmt = parse_sql(
            "SELECT a FROM x JOIN y ON x.k = y.k INNER JOIN z ON y.j = z.j"
        )
        assert len(stmt.joins) == 2

    def test_join_requires_on(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT a FROM l JOIN r")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        stmt = parse_sql("SELECT 1 + 2 * 3 FROM t")
        expr = stmt.items[0].expr
        assert isinstance(expr, A.Binary) and expr.op == "+"
        assert isinstance(expr.right, A.Binary) and expr.right.op == "*"

    def test_parentheses(self):
        stmt = parse_sql("SELECT (1 + 2) * 3 FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "*"

    def test_and_or_precedence(self):
        stmt = parse_sql("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
        assert stmt.where.op == "OR"

    def test_not(self):
        stmt = parse_sql("SELECT a FROM t WHERE NOT x = 1")
        assert isinstance(stmt.where, A.Unary) and stmt.where.op == "NOT"

    def test_in_list(self):
        stmt = parse_sql("SELECT a FROM t WHERE g IN (1, 2, 3)")
        assert isinstance(stmt.where, A.InListExpr)
        assert len(stmt.where.values) == 3

    def test_not_in(self):
        stmt = parse_sql("SELECT a FROM t WHERE g NOT IN ('x')")
        assert stmt.where.negated

    def test_between(self):
        stmt = parse_sql("SELECT a FROM t WHERE v BETWEEN 1 AND 10")
        assert isinstance(stmt.where, A.BetweenExpr)

    def test_not_between(self):
        stmt = parse_sql("SELECT a FROM t WHERE v NOT BETWEEN 1 AND 10")
        assert stmt.where.negated

    def test_case_when(self):
        stmt = parse_sql(
            "SELECT CASE WHEN v > 0 THEN 1 ELSE 0 END FROM t"
        )
        assert isinstance(stmt.items[0].expr, A.CaseExpr)

    def test_function_call(self):
        stmt = parse_sql("SELECT abs(v) FROM t")
        assert isinstance(stmt.items[0].expr, A.FuncExpr)

    def test_count_star(self):
        stmt = parse_sql("SELECT COUNT(*) FROM t")
        assert stmt.items[0].expr.star

    def test_count_distinct(self):
        stmt = parse_sql("SELECT COUNT(DISTINCT u) FROM t")
        assert stmt.items[0].expr.distinct

    def test_qualified_column(self):
        stmt = parse_sql("SELECT t.a FROM t")
        assert stmt.items[0].expr.qualifier == "t"

    def test_unary_minus(self):
        stmt = parse_sql("SELECT -v FROM t")
        assert isinstance(stmt.items[0].expr, A.Unary)

    def test_modulo(self):
        stmt = parse_sql("SELECT a FROM t WHERE a % 2 = 0")
        assert stmt.where.op == "="

    def test_boolean_literals(self):
        stmt = parse_sql("SELECT TRUE, FALSE FROM t")
        assert stmt.items[0].expr.value is True

    def test_order_by_position(self):
        stmt = parse_sql("SELECT a FROM t ORDER BY 1")
        assert isinstance(stmt.order_by[0].expr, A.NumberLit)


class TestTablesample:
    def test_bernoulli(self):
        stmt = parse_sql("SELECT a FROM t TABLESAMPLE BERNOULLI (5)")
        assert stmt.from_table.sample.method == "BERNOULLI"
        assert stmt.from_table.sample.value == 5.0

    def test_system_repeatable(self):
        stmt = parse_sql("SELECT a FROM t TABLESAMPLE SYSTEM (1.5) REPEATABLE (7)")
        assert stmt.from_table.sample.method == "SYSTEM"
        assert stmt.from_table.sample.seed == 7

    def test_fixed_rows_extension(self):
        stmt = parse_sql("SELECT a FROM t TABLESAMPLE ROWS (100)")
        assert stmt.from_table.sample.method == "ROWS"

    def test_bad_method(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT a FROM t TABLESAMPLE GAUSSIAN (5)")

    def test_sample_on_join_table(self):
        stmt = parse_sql(
            "SELECT a FROM l JOIN r TABLESAMPLE SYSTEM (10) ON l.k = r.k"
        )
        assert stmt.joins[0].table.sample is not None


class TestErrorClause:
    def test_parsed(self):
        stmt = parse_sql(
            "SELECT SUM(v) FROM t ERROR WITHIN 5% CONFIDENCE 95%"
        )
        assert stmt.error_spec.relative_error == pytest.approx(0.05)
        assert stmt.error_spec.confidence == pytest.approx(0.95)

    def test_fractional(self):
        stmt = parse_sql("SELECT SUM(v) FROM t ERROR WITHIN 2.5% CONFIDENCE 99%")
        assert stmt.error_spec.relative_error == pytest.approx(0.025)

    def test_requires_confidence(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT SUM(v) FROM t ERROR WITHIN 5%")

    def test_requires_percent_signs(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT SUM(v) FROM t ERROR WITHIN 5 CONFIDENCE 95")


class TestErrorReporting:
    def test_missing_from_item(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT FROM t")

    def test_dangling_not(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT a FROM t WHERE x NOT")

    def test_position_attached(self):
        try:
            parse_sql("SELECT a FROM t WHERE")
        except SQLSyntaxError as e:
            assert e.position >= 0
