"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import Database
from repro.engine.table import Table
from repro.workloads import generate_ssb, generate_tpch

#: default seed threaded through every statistical fixture; override with
#: ``pytest --repro-seed N`` or ``REPRO_SEED=N`` to replay a failure or
#: probe seed-sensitivity of the statistical tolerances.
DEFAULT_REPRO_SEED = 12345


def pytest_addoption(parser):
    parser.addoption(
        "--repro-seed",
        type=int,
        default=None,
        help="base seed for statistical fixtures "
        "(default: $REPRO_SEED or %d)" % DEFAULT_REPRO_SEED,
    )


def _resolve_seed(config) -> int:
    opt = config.getoption("--repro-seed")
    if opt is not None:
        return opt
    return int(os.environ.get("REPRO_SEED", DEFAULT_REPRO_SEED))


def pytest_report_header(config):
    return f"repro-seed: {_resolve_seed(config)}"


def pytest_runtest_makereport(item, call):
    """Print the seed alongside any failure so it can be replayed."""
    if call.when == "call" and call.excinfo is not None:
        seed = _resolve_seed(item.config)
        item.add_report_section(
            "call",
            "repro-seed",
            f"re-run with: pytest --repro-seed {seed} {item.nodeid}",
        )


@pytest.fixture
def repro_seed(request) -> int:
    """The session's base statistical seed (see ``--repro-seed``)."""
    return _resolve_seed(request.config)


@pytest.fixture
def rng(repro_seed):
    return np.random.default_rng(repro_seed)


@pytest.fixture
def small_db():
    """A tiny hand-checked database for exactness tests."""
    db = Database()
    db.create_table(
        "sales",
        {
            "id": np.arange(8, dtype=np.int64),
            "price": np.array([10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0]),
            "qty": np.array([1, 2, 3, 4, 1, 2, 3, 4], dtype=np.int64),
            "region": np.array(
                ["e", "e", "w", "w", "e", "w", "e", "w"], dtype=object
            ),
        },
        block_size=4,
    )
    db.create_table(
        "regions",
        {
            "rcode": np.array(["e", "w"], dtype=object),
            "zone": np.array([1, 2], dtype=np.int64),
        },
    )
    return db


@pytest.fixture
def medium_db():
    """A 100k-row skewed table for statistical tests."""
    rng = np.random.default_rng(7)
    n = 100_000
    db = Database()
    db.create_table(
        "facts",
        {
            "value": rng.exponential(100.0, n),
            "heavy": rng.lognormal(3.0, 2.0, n),
            "group_id": rng.integers(0, 20, n),
            "selector": rng.random(n),
        },
        block_size=512,
    )
    return db


@pytest.fixture(scope="session")
def tpch_db():
    """Session-scoped TPC-H-lite instance (scale small for speed)."""
    return generate_tpch(scale=1.0, seed=42, block_size=256)


@pytest.fixture(scope="session")
def ssb_db():
    return generate_ssb(scale=0.5, seed=42, block_size=256)


def brute_force_group_by(table: Table, key: str, value: str, agg: str):
    """Reference implementation used to check the engine."""
    out = {}
    keys = table[key]
    values = np.asarray(table[value], dtype=np.float64)
    for k in np.unique(keys):
        mask = keys == k
        vals = values[mask]
        kk = k.item() if hasattr(k, "item") else k
        if agg == "sum":
            out[kk] = float(vals.sum())
        elif agg == "count":
            out[kk] = float(mask.sum())
        elif agg == "avg":
            out[kk] = float(vals.mean())
        elif agg == "min":
            out[kk] = float(vals.min())
        elif agg == "max":
            out[kk] = float(vals.max())
    return out
