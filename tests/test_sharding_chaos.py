"""Chaos suite for the sharded serving layer (``pytest -m chaos -k shard``).

Seeded sweeps drive aggregate queries through
:class:`~repro.sharding.ScatterGatherExecutor` while the fault injector
kills, slows, and corrupts shards under a :class:`ManualClock` deadline.
The scatter-gather contract swept:

1. **Termination**: every query ends within its remaining deadline plus
   grace, measured on the fault clock (cooperative checking may overshoot
   by at most one un-checked slow delay, which stays below grace).
2. **Typed failure**: only result objects and :class:`QueryRefused`
   escape — a dead shard is an outcome, not a stack trace.
3. **Per-shard provenance**: every answer AND every refusal records one
   ``scatter_gather`` step per shard with its fate, plus a summary step
   carrying coverage; answers missing shards are flagged degraded under
   the ``reshard_degraded`` rung.
4. **Honest widening**: an exact-mode answer that lost shards must cover
   the whole-table truth *deterministically* (the envelope is a worst
   case, not an estimate); OLA-mode degraded answers must cover at the
   pooled statistical rate.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import pytest

from repro.core.errorspec import ErrorSpec
from repro.core.exceptions import QueryRefused
from repro.core.result import ApproximateResult
from repro.engine.table import Table
from repro.resilience import (
    Deadline,
    FaultInjector,
    FaultSpec,
    ManualClock,
    RESHARD_RUNG,
    inject,
    shard_site,
)
from repro.sharding import SCATTER_RUNG, ScatterGatherExecutor, ShardedTable

pytestmark = pytest.mark.chaos

_seed_env = os.environ.get("CHAOS_SEED")
SEEDS = [int(_seed_env)] if _seed_env else [0, 1, 2]

#: must stay below every deadline's grace window (see invariant 1)
SLOW_DELAY = 0.15

N_ROWS = 6_000
NUM_SHARDS = 8
TRIALS_PER_SEED = 5

STATUSES = {"served", "served_hedged", "failed", "breaker_open"}

SPEC = ErrorSpec(relative_error=0.10, confidence=0.95)


@dataclass
class Outcome:
    """One query's fate under one shard-fault schedule."""

    kind: str  # "answer" | "refused"
    mode: str
    elapsed: float
    allowed: float
    provenance: List[dict]
    degraded: bool = False
    coverage: Optional[float] = None
    ci_covers: Optional[bool] = None
    value_matches_exact: Optional[bool] = None
    statuses: List[str] = field(default_factory=list)


def _random_schedule(
    rng: np.random.Generator, clock: ManualClock
) -> FaultInjector:
    """Each shard independently draws at most one fault family."""
    specs = []
    for shard_id in range(NUM_SHARDS):
        if rng.random() >= 0.35:
            continue
        kind = rng.choice(["kill", "corrupt", "slow", "scan_error"])
        if kind == "kill":
            spec = FaultSpec(
                site=shard_site(shard_id, "exec"),
                kind="error",
                probability=float(rng.uniform(0.3, 1.0)),
                message=f"shard {shard_id} unreachable",
            )
        elif kind == "corrupt":
            spec = FaultSpec(
                site=shard_site(shard_id, "exec"),
                kind="corrupt",
                probability=float(rng.uniform(0.3, 1.0)),
            )
        elif kind == "slow":
            spec = FaultSpec(
                site=shard_site(shard_id, "scan"),
                kind="slow",
                probability=float(rng.uniform(0.3, 1.0)),
                delay=SLOW_DELAY,
                max_fires=(
                    None if rng.random() < 0.5 else int(rng.integers(1, 4))
                ),
            )
        else:
            spec = FaultSpec(
                site=shard_site(shard_id, "scan"),
                kind="error",
                probability=float(rng.uniform(0.3, 1.0)),
                after=int(rng.integers(0, 2)),
                max_fires=(
                    None if rng.random() < 0.5 else int(rng.integers(1, 3))
                ),
            )
        specs.append(spec)
    return FaultInjector(specs, seed=int(rng.integers(2**31)), clock=clock)


def _build_world(rng: np.random.Generator):
    values = rng.lognormal(3.0, 1.0, N_ROWS)
    table = Table({"value": values}, name="events")
    sharded = ShardedTable.from_table(table, NUM_SHARDS)
    truths = {
        "sum_gt": float(values[values > 20.0].sum()),
        "avg": float(values.mean()),
    }
    return sharded, truths


QUERIES = [
    ("SELECT SUM(value) AS s FROM events WHERE value > 20", "s", "sum_gt",
     "exact"),
    ("SELECT SUM(value) AS s FROM events WHERE value > 20", "s", "sum_gt",
     "ola"),
    ("SELECT AVG(value) AS a FROM events", "a", "avg", "exact"),
]


def _run_sweep(seed: int) -> List[Outcome]:
    outcomes: List[Outcome] = []
    rng = np.random.default_rng(seed)
    for _trial in range(TRIALS_PER_SEED):
        sharded, truths = _build_world(rng)
        executor = ScatterGatherExecutor(sharded, max_workers=1)
        clock = ManualClock()
        injector = _random_schedule(rng, clock)
        with inject(injector):
            for sql, alias, truth_key, mode in QUERIES:
                seconds = float(rng.choice([2.0, 5.0]))
                deadline = Deadline(seconds, clock=clock)
                clock.advance(float(rng.choice([0.0, 0.5])) * seconds)
                remaining = max(deadline.remaining(), 0.0)
                start = clock.now()
                truth = truths[truth_key]
                try:
                    result = executor.sql(
                        sql,
                        spec=SPEC if mode == "ola" else None,
                        seed=int(rng.integers(2**31)),
                        mode=mode,
                        deadline=deadline,
                    )
                except QueryRefused as exc:
                    outcomes.append(
                        Outcome(
                            kind="refused",
                            mode=mode,
                            elapsed=clock.now() - start,
                            allowed=remaining + deadline.grace_seconds,
                            provenance=exc.provenance,
                            statuses=[
                                p["status"]
                                for p in exc.provenance
                                if "shard" in p
                            ],
                        )
                    )
                    continue
                covers = None
                matches = None
                if isinstance(result, ApproximateResult):
                    cell = result.estimate(alias, 0)
                    if math.isfinite(cell.ci_low) and math.isfinite(
                        cell.ci_high
                    ):
                        covers = cell.covers(truth) or math.isclose(
                            cell.value, truth, rel_tol=1e-9
                        )
                else:
                    matches = math.isclose(
                        float(result.table[alias][0]), truth, rel_tol=1e-9
                    )
                summary = result.provenance[-1]
                outcomes.append(
                    Outcome(
                        kind="answer",
                        mode=mode,
                        elapsed=clock.now() - start,
                        allowed=remaining + deadline.grace_seconds,
                        provenance=result.provenance,
                        degraded=result.is_degraded,
                        coverage=summary.get("coverage"),
                        ci_covers=covers,
                        value_matches_exact=matches,
                        statuses=[
                            p["status"]
                            for p in result.provenance
                            if "shard" in p
                        ],
                    )
                )
    return outcomes


@pytest.fixture(params=SEEDS, ids=lambda s: f"seed{s}")
def sweep(request):
    return _run_sweep(request.param)


class TestShardChaosInvariants:
    def test_every_query_terminates_within_deadline_plus_grace(self, sweep):
        late = [o for o in sweep if o.elapsed > o.allowed + 1e-9]
        assert not late, (
            f"{len(late)}/{len(sweep)} sharded queries overran deadline + "
            f"grace: {[(o.elapsed, o.allowed) for o in late]}"
        )

    def test_only_typed_outcomes(self, sweep):
        # _run_sweep catches only QueryRefused; reaching here means
        # nothing untyped escaped any shard worker or the gather.
        assert len(sweep) == TRIALS_PER_SEED * len(QUERIES)
        assert {o.kind for o in sweep} <= {"answer", "refused"}

    def test_per_shard_provenance_is_complete(self, sweep):
        for o in sweep:
            shard_steps = [p for p in o.provenance if "shard" in p]
            assert len(shard_steps) == NUM_SHARDS, (
                f"{len(shard_steps)} shard steps for {NUM_SHARDS} shards"
            )
            assert [p["shard"] for p in shard_steps] == list(
                range(NUM_SHARDS)
            )
            for p in shard_steps:
                assert p["rung"] == SCATTER_RUNG
                assert p["status"] in STATUSES
                if p["status"] == "failed":
                    assert p["error"], "a failed shard with no error"
                if p["status"] == "served_hedged":
                    assert "abandoned" in p["attempts"] or p["attempts"]
            summary = o.provenance[-1]
            assert "shard" not in summary
            assert "coverage" in summary
            if o.kind == "answer":
                assert summary["outcome"] == "ok"
            else:
                assert summary["outcome"] == "failed"

    def test_answers_report_true_coverage(self, sweep):
        for o in sweep:
            if o.kind != "answer":
                continue
            served = sum(
                1 for s in o.statuses if s in ("served", "served_hedged")
            )
            assert o.coverage is not None
            assert 0.0 < o.coverage <= 1.0
            if served == NUM_SHARDS:
                assert o.coverage == pytest.approx(1.0)
                assert not o.degraded
            else:
                assert o.degraded
                assert o.provenance[-1]["rung"] == RESHARD_RUNG
                assert o.coverage >= 0.5  # the default quorum floor held

    def test_full_coverage_exact_answers_are_exact(self, sweep):
        for o in sweep:
            if o.kind == "answer" and o.mode == "exact" and not o.degraded:
                if o.value_matches_exact is not None:
                    assert o.value_matches_exact

    def test_exact_mode_widening_covers_deterministically(self, sweep):
        # The missing-shard envelope is a worst case over every possible
        # predicate outcome: with exactly-served survivors it must cover
        # ALWAYS, not just at the confidence level.
        judged = [
            o for o in sweep
            if o.kind == "answer" and o.mode == "exact" and o.degraded
            and o.ci_covers is not None
        ]
        for o in judged:
            assert o.ci_covers, (
                "an exact-mode k-of-n answer failed to cover the "
                "whole-table truth"
            )

    def test_ola_mode_degraded_cis_cover_pooled(self, sweep):
        judged = [
            o for o in sweep
            if o.kind == "answer" and o.mode == "ola"
            and o.ci_covers is not None
        ]
        if len(judged) < 3:
            pytest.skip(
                f"only {len(judged)} OLA answers in this schedule family"
            )
        coverage = sum(o.ci_covers for o in judged) / len(judged)
        assert coverage >= 0.85, (
            f"pooled sharded-OLA coverage {coverage:.2f} over "
            f"{len(judged)} answers"
        )


def test_shard_sweep_is_deterministic():
    """The same seed replays the exact same fates and provenance."""
    a = _run_sweep(SEEDS[0])
    b = _run_sweep(SEEDS[0])
    assert [(o.kind, o.mode, o.elapsed, o.coverage) for o in a] == [
        (o.kind, o.mode, o.elapsed, o.coverage) for o in b
    ]
    assert [o.provenance for o in a] == [o.provenance for o in b]
