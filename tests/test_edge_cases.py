"""Edge cases and failure injection across the stack.

Empty inputs, single rows, degenerate block sizes, boundary sampling
rates, dropped tables mid-flight — the situations a downstream user hits
first and bug reports are made of.
"""

import math

import numpy as np
import pytest

from repro import (
    Database,
    ErrorSpec,
    InfeasiblePlanError,
    SchemaError,
    Table,
)
from repro.core.errorspec import z_value
from repro.offline import SampleEntry, SynopsisCatalog
from repro.online import ReuseCache
from repro.sampling import (
    bernoulli_sample,
    block_bernoulli_sample,
    srs_sample,
    stratified_sample,
)
from repro.sketches import CountMinSketch, GKQuantileSketch, HyperLogLog


class TestEmptyInputs:
    @pytest.fixture
    def db(self):
        db = Database()
        db.create_table("empty", {"v": np.array([]), "g": np.array([])})
        db.create_table("one", {"v": np.array([42.0]), "g": np.array([1])})
        return db

    def test_scan_empty(self, db):
        res = db.sql("SELECT v FROM empty")
        assert res.table.num_rows == 0

    def test_aggregate_empty(self, db):
        res = db.sql("SELECT SUM(v) AS s, COUNT(*) AS c FROM empty")
        assert res.table["s"][0] == 0.0
        assert res.table["c"][0] == 0.0

    def test_group_by_empty(self, db):
        res = db.sql("SELECT g, SUM(v) AS s FROM empty GROUP BY g")
        assert res.table.num_rows == 0

    def test_join_with_empty_side(self, db):
        res = db.sql(
            "SELECT COUNT(*) AS c FROM one o JOIN empty e ON o.g = e.g"
        )
        assert res.scalar() == 0

    def test_order_limit_empty(self, db):
        res = db.sql("SELECT v FROM empty ORDER BY v LIMIT 5")
        assert res.table.num_rows == 0

    def test_sample_empty_table(self, db):
        res = db.sql("SELECT v FROM empty TABLESAMPLE SYSTEM (50)")
        assert res.table.num_rows == 0

    def test_samplers_on_empty(self):
        t = Table({"v": np.array([])})
        assert bernoulli_sample(t, 0.5).num_rows == 0
        assert srs_sample(t, 10).num_rows == 0
        assert block_bernoulli_sample(t, 0.5).num_rows == 0

    def test_sketches_accept_empty_batches(self):
        h = HyperLogLog(10)
        h.add(np.array([]))
        assert h.estimate() == 0 or h.estimate() < 1
        cm = CountMinSketch(0.01, 0.01)
        cm.add(np.array([]))
        assert cm.total == 0
        g = GKQuantileSketch(0.1)
        g.add(np.array([]))
        assert math.isnan(g.query(0.5))

    def test_pilot_refuses_empty(self, db):
        res = db.sql(
            "SELECT SUM(v) AS s FROM empty ERROR WITHIN 5% CONFIDENCE 95%"
        )
        assert not res.is_approximate  # fell back to exact


class TestDegenerateShapes:
    def test_single_row_table(self):
        db = Database()
        db.create_table("t", {"v": np.array([3.5]), "g": np.array(["x"], dtype=object)})
        res = db.sql("SELECT g, AVG(v) AS a FROM t GROUP BY g")
        assert res.table["a"][0] == 3.5

    def test_block_size_larger_than_table(self):
        t = Table({"v": np.arange(10)}, block_size=1000)
        assert t.num_blocks == 1
        s = block_bernoulli_sample(t, 0.99, np.random.default_rng(0))
        assert s.num_rows in (0, 10)

    def test_limit_zero(self):
        db = Database()
        db.create_table("t", {"v": np.arange(5)})
        res = db.sql("SELECT v FROM t LIMIT 0")
        assert res.table.num_rows == 0

    def test_bernoulli_rate_100(self):
        db = Database()
        db.create_table("t", {"v": np.arange(100)})
        res = db.sql("SELECT COUNT(*) AS c FROM t TABLESAMPLE BERNOULLI (100)")
        assert res.scalar() == 100

    def test_float_group_keys(self):
        db = Database()
        db.create_table("t", {"v": np.array([1.0, 2.0, 3.0]), "g": np.array([0.5, 0.5, 1.5])})
        res = db.sql("SELECT g, COUNT(*) AS c FROM t GROUP BY g ORDER BY g")
        assert res.table["c"].tolist() == [2.0, 1.0]

    def test_unicode_group_keys(self):
        db = Database()
        db.create_table(
            "t",
            {"v": np.ones(4), "g": np.array(["α", "β", "α", "日本"], dtype=object)},
        )
        res = db.sql("SELECT g, SUM(v) AS s FROM t WHERE g = 'α' GROUP BY g")
        assert res.table.num_rows == 1
        assert res.table["s"][0] == 2.0

    def test_division_by_zero_yields_nan(self):
        db = Database()
        db.create_table("t", {"a": np.array([1.0]), "b": np.array([0.0])})
        res = db.sql("SELECT a / b AS q FROM t")
        assert math.isnan(res.table["q"][0])

    def test_multi_key_order_mixed_directions(self):
        db = Database()
        db.create_table(
            "t",
            {
                "a": np.array([1, 1, 2, 2]),
                "b": np.array([10, 20, 10, 20]),
            },
        )
        res = db.sql("SELECT a, b FROM t ORDER BY a ASC, b DESC")
        assert res.table["b"].tolist() == [20, 10, 20, 10]

    def test_having_on_composite_expression(self):
        db = Database()
        db.create_table(
            "t", {"v": np.arange(10, dtype=np.float64), "g": np.arange(10) % 2}
        )
        res = db.sql(
            "SELECT g, SUM(v) / COUNT(*) AS m FROM t GROUP BY g "
            "HAVING SUM(v) > 20"
        )
        assert res.table.num_rows == 1
        assert res.table["m"][0] == pytest.approx(5.0)

    def test_stratified_more_requested_than_population(self, rng):
        t = Table({"v": np.arange(10), "g": np.arange(10) % 2})
        s = stratified_sample(t, "g", 100, "senate", rng=rng)
        assert s.num_rows == 10  # capped at census


class TestDatabaseLifecycle:
    def test_duplicate_create_rejected(self):
        db = Database()
        db.create_table("t", {"v": [1]})
        with pytest.raises(SchemaError, match="already exists"):
            db.create_table("t", {"v": [2]})

    def test_drop_then_query_fails(self):
        db = Database()
        db.create_table("t", {"v": [1]})
        db.drop_table("t")
        with pytest.raises(SchemaError, match="no table"):
            db.sql("SELECT v FROM t")

    def test_append_invalidates_stats(self):
        db = Database()
        db.create_table("t", {"v": np.arange(10)})
        before = db.stats("t").num_rows
        db.append_rows("t", {"v": np.arange(5)})
        after = db.stats("t").num_rows
        assert (before, after) == (10, 15)

    def test_replace_table(self):
        db = Database()
        db.create_table("t", {"v": np.arange(10)})
        db.replace_table("t", Table({"v": np.arange(3)}))
        assert db.table("t").num_rows == 3

    def test_replace_missing_table(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.replace_table("nope", Table({"v": [1]}))

    def test_catalog_survives_dropped_table(self):
        db = Database()
        db.create_table("t", {"v": np.arange(100, dtype=np.float64)})
        cat = SynopsisCatalog.for_database(db)
        entry = SampleEntry(
            table="t",
            sample=srs_sample(db.table("t"), 10, np.random.default_rng(0)),
            kind="uniform",
            built_at_rows=100,
        )
        cat.add_sample(entry)
        db.drop_table("t")
        # Freshness checks must fail loudly-but-gracefully: the entry is
        # simply never offered.
        with pytest.raises(SchemaError):
            entry.staleness(db)

    def test_reuse_cache_handles_dropped_table(self, rng):
        db = Database()
        db.create_table(
            "t", {"v": rng.random(20_000), "g": rng.integers(0, 3, 20_000)},
            block_size=512,
        )
        cache = ReuseCache(db, seed=1)
        cache.sql("SELECT SUM(v) AS s FROM t", ErrorSpec(0.2, 0.9))
        db.drop_table("t")
        db.create_table(
            "t", {"v": rng.random(30_000), "g": rng.integers(0, 3, 30_000)},
            block_size=512,
        )
        res = cache.sql("SELECT SUM(v) AS s FROM t", ErrorSpec(0.2, 0.9))
        assert res.technique == "quickr"  # repopulated against the new table


class TestSpecBoundaries:
    def test_very_high_confidence(self):
        spec = ErrorSpec(0.1, 0.9999)
        assert z_value(spec.confidence) > 3.5

    def test_pilot_with_extreme_confidence_still_sound(self, rng):
        db = Database()
        n = 200_000
        db.create_table(
            "t", {"v": rng.gamma(2.0, 10.0, n)}, block_size=512
        )
        res = db.sql(
            "SELECT SUM(v) AS s FROM t ERROR WITHIN 10% CONFIDENCE 99.9%",
            seed=4,
        )
        if res.is_approximate:
            truth = db.table("t")["v"].sum()
            assert abs(res.scalar() - truth) / truth <= 0.1

    def test_negative_measure_refused_by_pilot(self, rng):
        """Aggregates that straddle zero cannot be bounded relatively —
        the planner must refuse, not guess."""
        from repro.online import PilotPlanner
        from repro.sql import bind_sql

        db = Database()
        db.create_table(
            "t", {"v": rng.normal(0.0, 1.0, 200_000)}, block_size=512
        )
        bound = bind_sql("SELECT SUM(v) AS s FROM t", db)
        with pytest.raises(InfeasiblePlanError):
            PilotPlanner(db, seed=1).run(bound, ErrorSpec(0.05, 0.95))
