"""Tests for plan execution and work accounting."""

import numpy as np
import pytest

from repro import Database, PlanError, Table
from repro.engine.aggregates import AggregateSpec
from repro.engine.executor import Executor, join_indices
from repro.engine.expressions import col
from repro.engine.plan import (
    Filter,
    GroupByAggregate,
    HashJoin,
    Limit,
    OrderBy,
    Project,
    SampleClause,
    Scan,
    UnionAll,
    attach_sample,
    scans_in,
    strip_samples,
)


@pytest.fixture
def db():
    db = Database()
    db.create_table(
        "t",
        {
            "a": np.arange(100, dtype=np.int64),
            "b": np.arange(100, dtype=np.float64) * 0.5,
            "g": np.arange(100) % 4,
        },
        block_size=10,
    )
    db.create_table(
        "dim",
        {"k": np.arange(4, dtype=np.int64), "label": np.array(list("wxyz"), dtype=object)},
    )
    return db


def run(db, plan, seed=0):
    return Executor(db, seed=seed).execute(plan)


class TestScan:
    def test_full_scan(self, db):
        out, stats = run(db, Scan("t"))
        assert out.num_rows == 100
        assert stats.blocks_scanned == 10
        assert stats.rows_scanned == 100
        assert stats.fraction_blocks_read == 1.0

    def test_column_pruning(self, db):
        out, _ = run(db, Scan("t", columns=("a",)))
        assert out.column_names == ["a"]

    def test_missing_column(self, db):
        with pytest.raises(Exception):
            run(db, Scan("t", columns=("nope",)))

    def test_alias_qualifies_names(self, db):
        out, _ = run(db, Scan("t", alias="x"))
        assert "x.a" in out.column_names

    def test_bernoulli_row_sample_touches_all_blocks(self, db):
        out, stats = run(
            db, Scan("t", sample=SampleClause("bernoulli_rows", rate=0.5, seed=1))
        )
        assert 20 <= out.num_rows <= 80
        # With 50% row rate and block size 10, essentially every block is hit.
        assert stats.blocks_scanned >= 9

    def test_block_sample_skips_blocks(self, db):
        out, stats = run(
            db, Scan("t", sample=SampleClause("system_blocks", rate=0.3, seed=5))
        )
        assert stats.blocks_scanned < 10
        assert out.num_rows == stats.blocks_scanned * 10
        assert "__block_id" in out.column_names

    def test_fixed_rows_sample(self, db):
        out, _ = run(db, Scan("t", sample=SampleClause("fixed_rows", size=7)))
        assert out.num_rows == 7

    def test_fixed_blocks_sample(self, db):
        out, stats = run(db, Scan("t", sample=SampleClause("fixed_blocks", size=3)))
        assert stats.blocks_scanned == 3

    def test_sample_seed_reproducible(self, db):
        plan = Scan("t", sample=SampleClause("system_blocks", rate=0.4, seed=99))
        out1, _ = run(db, plan, seed=1)
        out2, _ = run(db, plan, seed=2)
        assert out1["a"].tolist() == out2["a"].tolist()

    def test_sample_clause_validation(self):
        with pytest.raises(PlanError):
            SampleClause("bernoulli_rows", rate=1.5)
        with pytest.raises(PlanError):
            SampleClause("fixed_rows")
        with pytest.raises(PlanError):
            SampleClause("martian")


class TestOperators:
    def test_filter(self, db):
        out, _ = run(db, Filter(Scan("t"), col("a") < 10))
        assert out.num_rows == 10

    def test_project_expression(self, db):
        plan = Project(Scan("t"), ((col("a") + col("b"), "ab"),))
        out, _ = run(db, plan)
        assert out["ab"][2] == pytest.approx(3.0)

    def test_order_by_desc_limit(self, db):
        plan = Limit(OrderBy(Scan("t"), (("a", False),)), 3)
        out, _ = run(db, plan)
        assert out["a"].tolist() == [99, 98, 97]

    def test_order_by_string_column(self, db):
        plan = OrderBy(Scan("dim"), (("label", False),))
        out, _ = run(db, plan)
        assert out["label"].tolist() == ["z", "y", "x", "w"]

    def test_union_all(self, db):
        plan = UnionAll((Scan("dim"), Scan("dim")))
        out, _ = run(db, plan)
        assert out.num_rows == 8

    def test_scalar_aggregate(self, db):
        plan = GroupByAggregate(
            Scan("t"), (), (AggregateSpec("sum", col("b"), "s"),)
        )
        out, _ = run(db, plan)
        assert out["s"][0] == pytest.approx(np.arange(100).sum() * 0.5)

    def test_grouped_aggregate(self, db):
        plan = GroupByAggregate(
            Scan("t"),
            ((col("g"), "g"),),
            (AggregateSpec("count", None, "c"),),
        )
        out, _ = run(db, plan)
        assert sorted(out["c"].tolist()) == [25.0] * 4

    def test_having(self, db):
        plan = GroupByAggregate(
            Scan("t"),
            ((col("g"), "g"),),
            (AggregateSpec("sum", col("a"), "s"),),
            having=col("s") > 1224,
        )
        out, _ = run(db, plan)
        # sums are 1200, 1225, 1250, 1275 for g=0..3
        assert out.num_rows == 3

    def test_aggregate_empty_input(self, db):
        plan = GroupByAggregate(
            Filter(Scan("t"), col("a") < -1),
            ((col("g"), "g"),),
            (AggregateSpec("sum", col("a"), "s"),),
        )
        out, _ = run(db, plan)
        assert out.num_rows == 0

    def test_agg_input_rows_accounted(self, db):
        plan = GroupByAggregate(Scan("t"), (), (AggregateSpec("count", None, "c"),))
        _, stats = run(db, plan)
        assert stats.agg_input_rows == 100


class TestJoins:
    def test_inner_join(self, db):
        plan = HashJoin(Scan("t"), Scan("dim"), ("g",), ("k",))
        out, stats = run(db, plan)
        assert out.num_rows == 100
        assert "label" in out.column_names
        assert stats.join_input_rows == 104

    def test_inner_join_values_align(self, db):
        plan = HashJoin(Scan("t"), Scan("dim"), ("g",), ("k",))
        out, _ = run(db, plan)
        labels = np.array(list("wxyz"), dtype=object)
        assert (out["label"] == labels[out["g"]]).all()

    def test_left_join_pads_nan(self, db):
        small = Database()
        small.create_table("l", {"k": np.array([1, 2, 3])})
        small.create_table("r", {"k": np.array([1]), "v": np.array([10.0])})
        plan = HashJoin(Scan("l"), Scan("r"), ("k",), ("k",), how="left")
        out, _ = run(small, plan)
        assert out.num_rows == 3
        assert np.isnan(out["v"]).sum() == 2

    def test_join_name_collision_suffixed(self, db):
        small = Database()
        small.create_table("l", {"k": np.array([1]), "v": np.array([1.0])})
        small.create_table("r", {"k": np.array([1]), "v": np.array([2.0])})
        plan = HashJoin(Scan("l"), Scan("r"), ("k",), ("k",))
        out, _ = run(small, plan)
        assert "v__r" in out.column_names

    def test_join_requires_keys(self, db):
        with pytest.raises(PlanError):
            HashJoin(Scan("t"), Scan("dim"), (), ())


class TestJoinIndices:
    def test_basic_match(self):
        li, ri, un = join_indices([np.array([1, 2, 3])], [np.array([2, 3, 4])])
        pairs = set(zip(li.tolist(), ri.tolist()))
        assert pairs == {(1, 0), (2, 1)}
        assert un.tolist() == [0]

    def test_many_to_many(self):
        li, ri, _ = join_indices([np.array([1, 1])], [np.array([1, 1, 1])])
        assert len(li) == 6

    def test_empty_sides(self):
        li, ri, un = join_indices([np.array([])], [np.array([1])])
        assert len(li) == 0 and len(un) == 0

    def test_string_keys(self):
        li, ri, _ = join_indices(
            [np.array(["a", "b"], dtype=object)], [np.array(["b"], dtype=object)]
        )
        assert list(zip(li.tolist(), ri.tolist())) == [(1, 0)]

    def test_composite_keys(self):
        li, ri, _ = join_indices(
            [np.array([1, 1, 2]), np.array([5, 6, 5])],
            [np.array([1, 2]), np.array([6, 5])],
        )
        pairs = set(zip(li.tolist(), ri.tolist()))
        assert pairs == {(1, 0), (2, 1)}

    def test_random_against_brute_force(self, rng):
        lk = rng.integers(0, 20, 200)
        rk = rng.integers(0, 20, 150)
        li, ri, un = join_indices([lk], [rk])
        expected = {(i, j) for i in range(200) for j in range(150) if lk[i] == rk[j]}
        assert set(zip(li.tolist(), ri.tolist())) == expected
        assert set(un.tolist()) == {
            i for i in range(200) if lk[i] not in set(rk.tolist())
        }


class TestPlanUtilities:
    def test_attach_and_strip_sample(self, db):
        plan = Filter(Scan("t"), col("a") > 5)
        sampled = attach_sample(plan, "t", SampleClause("system_blocks", rate=0.5))
        scan = scans_in(sampled)[0]
        assert scan.sample is not None
        clean = strip_samples(sampled)
        assert scans_in(clean)[0].sample is None

    def test_explain_renders_tree(self, db):
        plan = Limit(Filter(Scan("t"), col("a") > 5), 3)
        text = plan.explain()
        assert "Limit(3)" in text and "Scan(t" in text
