"""Tests for the rule-based optimizer: rewrites must preserve results."""

import numpy as np
import pytest

from repro import Database
from repro.engine.optimizer import optimize_plan, output_columns, push_down_predicates
from repro.engine.plan import Filter, HashJoin, Scan, scans_in, walk_plan
from repro.sql.binder import bind_sql


@pytest.fixture
def db():
    rng = np.random.default_rng(3)
    db = Database()
    db.create_table(
        "fact",
        {
            "k": rng.integers(0, 50, 5000),
            "v": rng.normal(100, 10, 5000),
            "w": rng.random(5000),
        },
        block_size=128,
    )
    db.create_table(
        "dim",
        {"k": np.arange(50, dtype=np.int64), "cat": np.arange(50) % 5},
    )
    return db


def results_match(db, sql):
    bound = bind_sql(sql, db)
    raw, _ = db.execute(bound.plan, optimize=False)
    opt_plan = optimize_plan(bound.plan, db)
    opt, _ = db.execute(opt_plan, optimize=False)
    assert raw.column_names == opt.column_names
    for col in raw.column_names:
        a, b = raw[col], opt[col]
        if a.dtype == object:
            assert sorted(map(str, a)) == sorted(map(str, b))
        else:
            assert np.allclose(np.sort(a.astype(float)), np.sort(b.astype(float)))
    return opt_plan


class TestEquivalence:
    def test_filter_groupby(self, db):
        results_match(
            db, "SELECT k, SUM(v) AS s FROM fact WHERE w < 0.5 GROUP BY k"
        )

    def test_join_with_dim_filter(self, db):
        results_match(
            db,
            "SELECT d.cat AS cat, SUM(f.v) AS s FROM fact f "
            "JOIN dim d ON f.k = d.k WHERE d.cat = 2 GROUP BY d.cat",
        )

    def test_join_with_fact_filter(self, db):
        results_match(
            db,
            "SELECT COUNT(*) AS c FROM fact f JOIN dim d ON f.k = d.k "
            "WHERE f.w < 0.1 AND d.cat > 1",
        )

    def test_order_limit(self, db):
        bound = bind_sql(
            "SELECT k, SUM(v) AS s FROM fact GROUP BY k ORDER BY s DESC LIMIT 5",
            db,
        )
        raw, _ = db.execute(bound.plan, optimize=False)
        opt, _ = db.execute(optimize_plan(bound.plan, db), optimize=False)
        assert raw["k"].tolist() == opt["k"].tolist()


class TestPushdown:
    def test_fact_predicate_reaches_scan(self, db):
        bound = bind_sql(
            "SELECT COUNT(*) AS c FROM fact f JOIN dim d ON f.k = d.k "
            "WHERE f.w < 0.1",
            db,
        )
        plan = optimize_plan(bound.plan, db)
        # The filter should now sit below the join.
        join = next(n for n in walk_plan(plan) if isinstance(n, HashJoin))
        below_join_filters = [
            n
            for side in (join.left, join.right)
            for n in walk_plan(side)
            if isinstance(n, Filter)
        ]
        assert below_join_filters, plan.explain()

    def test_conjuncts_split_to_both_sides(self, db):
        bound = bind_sql(
            "SELECT COUNT(*) AS c FROM fact f JOIN dim d ON f.k = d.k "
            "WHERE f.w < 0.5 AND d.cat = 1",
            db,
        )
        plan = optimize_plan(bound.plan, db)
        join = next(n for n in walk_plan(plan) if isinstance(n, HashJoin))
        left_filters = [n for n in walk_plan(join.left) if isinstance(n, Filter)]
        right_filters = [n for n in walk_plan(join.right) if isinstance(n, Filter)]
        assert left_filters and right_filters

    def test_idempotent(self, db):
        bound = bind_sql(
            "SELECT COUNT(*) AS c FROM fact WHERE w < 0.5 AND v > 90", db
        )
        once = push_down_predicates(bound.plan)
        twice = push_down_predicates(once)
        assert once.explain() == twice.explain()


class TestPruning:
    def test_scan_columns_restricted(self, db):
        bound = bind_sql("SELECT SUM(v) AS s FROM fact", db)
        plan = optimize_plan(bound.plan, db)
        scan = scans_in(plan)[0]
        assert scan.columns == ("v",)

    def test_filter_columns_kept(self, db):
        bound = bind_sql("SELECT SUM(v) AS s FROM fact WHERE w < 0.5", db)
        plan = optimize_plan(bound.plan, db)
        scan = scans_in(plan)[0]
        assert set(scan.columns) == {"v", "w"}

    def test_join_keys_kept(self, db):
        bound = bind_sql(
            "SELECT SUM(f.v) AS s FROM fact f JOIN dim d ON f.k = d.k", db
        )
        plan = optimize_plan(bound.plan, db)
        for scan in scans_in(plan):
            assert "k" in scan.columns


class TestJoinOrdering:
    def test_small_side_builds(self, db):
        bound = bind_sql(
            "SELECT COUNT(*) AS c FROM fact f JOIN dim d ON f.k = d.k", db
        )
        plan = optimize_plan(bound.plan, db)
        join = next(n for n in walk_plan(plan) if isinstance(n, HashJoin))
        left_scan = scans_in(join.left)[0]
        assert left_scan.table_name == "dim"  # smaller side on the left


class TestOutputColumns:
    def test_scan_qualified(self, db):
        cols = output_columns(Scan("dim", alias="d"), db)
        assert cols == {"d.k", "d.cat"}

    def test_groupby_outputs(self, db):
        bound = bind_sql("SELECT k, SUM(v) AS s FROM fact GROUP BY k", db)
        cols = output_columns(bound.plan, db)
        assert "s" in cols
