"""Unit tests for the observability layer (repro.obs).

Covers the :class:`Tracer`/:class:`Span` machinery, the no-op contract
when tracing is off, the process-wide :class:`MetricsRegistry`, the
span JSON-schema validator, ``EXPLAIN`` / ``EXPLAIN ANALYZE`` through
the SQL front-end, the ``python -m repro trace`` CLI, and the
``ExecutionStats.to_dict`` contract shared by every execution path.

The cross-path conformance suite (differential span trees, bitwise
identity with tracing off, golden rung payloads) lives in
``test_trace_conformance.py``.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import Database
from repro.core.errorspec import ErrorSpec
from repro.engine.kernel_cache import KernelCache, set_kernel_cache
from repro.obs.explain import ExplainResult, run_explain_analyze
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.obs.schema import (
    REQUIRED_ATTRIBUTES,
    SPAN_SCHEMA,
    validate_span,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    current_span,
    current_tracer,
    event,
    render_span_tree,
    span,
    structural_signature,
    trace_scope,
    tracer_signature,
)
from repro.resilience.deadline import ManualClock
from repro.sql.parser import split_explain
from repro.core.exceptions import SQLSyntaxError

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def fresh_metrics():
    """Isolate every test's metrics (the registry is process-global)."""
    registry = MetricsRegistry()
    set_metrics(registry)
    yield registry
    set_metrics(None)


@pytest.fixture
def db():
    database = Database()
    rng = np.random.default_rng(11)
    database.create_table(
        "sales",
        {
            "price": rng.exponential(10.0, 4000),
            "region": rng.integers(0, 4, 4000),
        },
        block_size=256,
    )
    return database


# ----------------------------------------------------------------------
# Tracer / Span mechanics
# ----------------------------------------------------------------------

class TestTracer:
    def test_span_tree_nesting_and_ids(self):
        tracer = Tracer()
        with trace_scope(tracer):
            with span("query", engine="aqp") as q:
                with span("plan"):
                    pass
                with span("scan", table="t", rows_scanned=1, blocks_scanned=1):
                    pass
        assert [s.name for s in tracer.walk()] == ["query", "plan", "scan"]
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root is q
        assert root.parent_id is None
        assert [c.parent_id for c in root.children] == [root.span_id] * 2
        assert root.span_id == 0
        assert [c.span_id for c in root.children] == [1, 2]

    def test_find_and_attributes(self):
        tracer = Tracer()
        with trace_scope(tracer):
            with span("query", engine="ladder") as q:
                q.set(rung="requested", technique="quickr")
        found = tracer.find("query")
        assert len(found) == 1
        assert found[0].attributes["rung"] == "requested"
        assert tracer.find("scan") == []

    def test_exception_marks_span_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with trace_scope(tracer):
                with span("query", engine="aqp"):
                    raise ValueError("boom")
        (root,) = tracer.roots
        assert root.status == "error"
        assert root.error == "ValueError: boom"
        assert root.end is not None

    def test_fail_marks_without_unwinding(self):
        tracer = Tracer()
        with trace_scope(tracer):
            with span("shard.0") as sp:
                sp.set(shard_status="failed").fail("shard 0 unreachable")
        (root,) = tracer.roots
        assert root.status == "error"
        assert root.error == "shard 0 unreachable"

    def test_event_is_zero_duration(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with trace_scope(tracer):
            with span("query", engine="aqp"):
                clock.advance(1.0)
                node = event("retry", site="requested", attempt=1)
                clock.advance(1.0)
        assert node.duration == 0.0
        assert node.start == 1.0
        assert node.parent_id == tracer.roots[0].span_id

    def test_manual_clock_durations(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with trace_scope(tracer):
            with span("query", engine="aqp"):
                clock.advance(2.5)
        assert tracer.roots[0].duration == 2.5

    def test_trace_scope_none_inherits(self):
        tracer = Tracer()
        with trace_scope(tracer):
            with span("query", engine="aqp") as q:
                with trace_scope(None):
                    assert current_tracer() is tracer
                    assert current_span() is q
                    with span("plan"):
                        pass
        assert [s.name for s in tracer.walk()] == ["query", "plan"]

    def test_explicit_tracer_reroots_in_worker_thread(self):
        tracer = Tracer()
        with trace_scope(tracer):
            with span("query", engine="scatter_gather") as parent:
                results = []

                def work(i):
                    # Fresh thread: no inherited contextvars.
                    assert current_tracer() is None
                    with span(
                        f"shard.{i}", tracer=tracer, parent=parent
                    ) as sp:
                        sp.set(shard_status="served")
                        event("hedge", shard=i, attempt=1)
                    results.append(i)

                threads = [
                    threading.Thread(target=work, args=(i,)) for i in range(2)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        assert sorted(results) == [0, 1]
        shard_spans = [
            s for s in tracer.walk() if s.name.startswith("shard.")
        ]
        assert len(shard_spans) == 2
        assert all(s.parent_id == parent.span_id for s in shard_spans)
        hedges = tracer.find("hedge")
        assert len(hedges) == 2
        # Hedge events are nested under their shard span, not the root.
        shard_ids = {s.span_id for s in shard_spans}
        assert all(h.parent_id in shard_ids for h in hedges)

    def test_to_dict_shape(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with trace_scope(tracer):
            with span("query", engine="aqp"):
                clock.advance(1.0)
        doc = tracer.to_dict()
        assert set(doc) == {"spans"}
        root = doc["spans"][0]
        assert root["name"] == "query"
        assert root["duration"] == 1.0
        assert root["children"] == []
        assert validate_span(root) == []


class TestNoOpWhenOff:
    def test_span_yields_null_span(self):
        assert current_tracer() is None
        with span("query", engine="aqp") as sp:
            assert sp is NULL_SPAN
            assert not sp
            assert sp.set(anything=1) is NULL_SPAN
            assert sp.fail("ignored") is NULL_SPAN

    def test_event_returns_none(self):
        assert event("fault", site="x", kind="error", arrival=0, seed=0) is None

    def test_real_span_is_truthy(self):
        tracer = Tracer()
        with trace_scope(tracer):
            with span("query", engine="aqp") as sp:
                assert sp
                assert isinstance(sp, Span)


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counters_with_labels(self, fresh_metrics):
        m = fresh_metrics
        m.inc("queries_total", engine="aqp", technique="exact")
        m.inc("queries_total", engine="aqp", technique="exact")
        m.inc("queries_total", engine="ladder", technique="quickr")
        assert m.counter_value(
            "queries_total", engine="aqp", technique="exact"
        ) == 2.0
        assert m.counter_total("queries_total") == 3.0
        assert m.counter_value("queries_total", engine="nope") == 0.0

    def test_label_rendering_is_sorted_and_stable(self, fresh_metrics):
        m = fresh_metrics
        m.inc("c", zebra="z", alpha="a")
        snap = m.snapshot(include_caches=False)
        assert list(snap["counters"]) == ['c{alpha="a",zebra="z"}']

    def test_gauges_and_histograms(self, fresh_metrics):
        m = fresh_metrics
        m.set_gauge("g", 1.5, kind="x")
        for v in (1.0, 3.0, 2.0):
            m.observe("h", v)
        snap = m.snapshot(include_caches=False)
        assert snap["gauges"] == {'g{kind="x"}': 1.5}
        h = snap["histograms"]["h"]
        assert h == {"count": 3.0, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0}

    def test_to_json_round_trips(self, fresh_metrics):
        fresh_metrics.inc("c")
        doc = json.loads(fresh_metrics.to_json(include_caches=False))
        assert doc["counters"] == {"c": 1.0}

    def test_reset(self, fresh_metrics):
        fresh_metrics.inc("c")
        fresh_metrics.reset()
        assert fresh_metrics.snapshot(include_caches=False)["counters"] == {}

    def test_snapshot_folds_in_cache_gauges(self, fresh_metrics):
        gauges = fresh_metrics.snapshot()["gauges"]
        for prefix in ("kernel_cache", "synopsis_cache"):
            assert f"{prefix}_hits" in gauges
            assert f"{prefix}_misses" in gauges
            assert f"{prefix}_hit_rate" in gauges

    def test_global_registry_swap(self):
        mine = MetricsRegistry()
        set_metrics(mine)
        try:
            assert get_metrics() is mine
        finally:
            set_metrics(None)
        assert get_metrics() is not mine

    def test_thread_safety_of_inc(self, fresh_metrics):
        m = fresh_metrics

        def hammer():
            for _ in range(500):
                m.inc("c", worker="w")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter_value("c", worker="w") == 2000.0


class TestEngineMetrics:
    def test_kernel_cache_lookup_counters(self, db, fresh_metrics):
        set_kernel_cache(KernelCache())
        try:
            db.sql("SELECT SUM(price) AS s FROM sales")
            assert fresh_metrics.counter_value(
                "kernel_cache_lookups_total", result="miss"
            ) == 1.0
            db.sql("SELECT SUM(price) AS s FROM sales")
            assert fresh_metrics.counter_value(
                "kernel_cache_lookups_total", result="hit"
            ) == 1.0
        finally:
            set_kernel_cache(None)

    def test_queries_total_by_engine(self, db, fresh_metrics):
        db.sql("SELECT COUNT(*) AS c FROM sales")
        assert fresh_metrics.counter_value(
            "queries_total", engine="aqp", technique="exact"
        ) == 1.0

    def test_deadline_miss_counter(self, fresh_metrics):
        from repro.core.exceptions import DeadlineExceeded
        from repro.resilience.deadline import Deadline

        clock = ManualClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded):
            deadline.check(site="executor.scan")
        assert fresh_metrics.counter_value(
            "deadline_misses_total", site="executor.scan"
        ) == 1.0

    def test_breaker_transition_metrics(self, fresh_metrics):
        from repro.resilience.retry import CircuitBreaker

        b = CircuitBreaker(failure_threshold=2, cooldown=1, name="t")
        b.record_failure()
        b.record_failure()  # -> open
        assert b.state == "open"
        assert b.times_opened == 1
        b.allow()  # cooldown -> half_open
        b.record_success()  # -> closed
        mv = fresh_metrics.counter_value
        assert mv("breaker_transitions_total", breaker="t", to="open") == 1.0
        assert mv("breaker_transitions_total", breaker="t", to="half_open") == 1.0
        assert mv("breaker_transitions_total", breaker="t", to="closed") == 1.0

    def test_retry_attempt_metric_and_span(self, fresh_metrics):
        from repro.resilience.retry import RetryPolicy

        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise OSError("transient")
            return "ok"

        tracer = Tracer()
        policy = RetryPolicy(max_attempts=3, seed=0, retry_on=(OSError,))
        with trace_scope(tracer):
            assert policy.call(flaky, site="builder") == "ok"
        assert fresh_metrics.counter_value(
            "retry_attempts_total", site="builder"
        ) == 1.0
        (retry_span,) = tracer.find("retry")
        assert retry_span.attributes["site"] == "builder"
        assert retry_span.attributes["attempt"] == 1
        assert "OSError" in retry_span.error

    def test_synopsis_cache_lookup_counters(self, fresh_metrics):
        from repro.storage.synopsis_cache import SynopsisCache

        cache = SynopsisCache()
        key = cache.make_key(("t", 123), "uniform")
        assert cache.get(key) is None
        cache.put(key, object(), nbytes=8)
        assert cache.get(key) is not None
        mv = fresh_metrics.counter_value
        assert mv("synopsis_cache_lookups_total", result="miss") == 1.0
        assert mv("synopsis_cache_lookups_total", result="hit") == 1.0


# ----------------------------------------------------------------------
# Schema validator
# ----------------------------------------------------------------------

def _minimal_span(name="query", **attrs):
    base_attrs = {
        "query": {"engine": "aqp"},
        "scan": {"table": "t", "rows_scanned": 1, "blocks_scanned": 1},
        "kernel": {"signature": "abc", "cache_hit": True},
    }.get(name, {})
    base_attrs.update(attrs)
    return {
        "name": name,
        "span_id": 0,
        "parent_id": None,
        "start": 0.0,
        "end": 1.0,
        "duration": 1.0,
        "status": "ok",
        "error": "",
        "attributes": base_attrs,
        "children": [],
    }


class TestSchema:
    def test_valid_span_passes(self):
        assert validate_span(_minimal_span()) == []

    def test_unknown_span_name_rejected(self):
        doc = _minimal_span()
        doc["name"] = "mystery"
        assert any("does not match" in e for e in validate_span(doc))

    def test_shard_names_match_pattern(self):
        doc = _minimal_span("shard.3", shard_status="served")
        assert validate_span(doc) == []
        doc["name"] = "shard.x"
        assert validate_span(doc) != []

    def test_missing_required_field(self):
        doc = _minimal_span()
        del doc["duration"]
        assert any("missing required" in e for e in validate_span(doc))

    def test_additional_property_rejected(self):
        doc = _minimal_span()
        doc["extra"] = 1
        assert any("unexpected property" in e for e in validate_span(doc))

    def test_wrong_types_rejected(self):
        doc = _minimal_span()
        doc["span_id"] = "zero"
        assert any("not of type" in e for e in validate_span(doc))
        doc = _minimal_span()
        doc["status"] = "maybe"
        assert any("enum" in e for e in validate_span(doc))
        doc = _minimal_span()
        doc["duration"] = -1.0
        assert any("minimum" in e for e in validate_span(doc))

    def test_children_validated_recursively(self):
        doc = _minimal_span()
        bad_child = _minimal_span("scan")
        del bad_child["attributes"]["table"]
        doc["children"] = [bad_child]
        assert any("missing attribute 'table'" in e for e in validate_span(doc))

    def test_required_attributes_enforced_per_name(self):
        for name, required in REQUIRED_ATTRIBUTES.items():
            span_name = "shard.0" if name == "shard" else name
            doc = _minimal_span(span_name)
            doc["attributes"] = {}
            errors = validate_span(doc)
            for attr in required:
                assert any(attr in e for e in errors), (name, attr, errors)

    def test_schema_is_json_serializable(self):
        json.dumps(SPAN_SCHEMA)


# ----------------------------------------------------------------------
# Rendering and structural comparison
# ----------------------------------------------------------------------

class TestRendering:
    def test_render_span_tree_markers_and_attrs(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with trace_scope(tracer):
            with span("query", engine="ladder"):
                with span("degrade", rung="requested") as sp:
                    sp.fail("InjectedFault: nope")
                with span("scan", table="sales", rows_scanned=10,
                          blocks_scanned=2):
                    pass
        text = render_span_tree(tracer, show_timing=False)
        lines = text.splitlines()
        assert lines[0].startswith("+ query")
        assert "x degrade" in lines[1]
        assert "rung=requested" in lines[1]
        assert "error=InjectedFault: nope" in lines[1]
        assert "table=sales" in lines[2]
        assert "rows_scanned=10" in lines[2]

    def test_structural_signature_ignore_splices(self):
        tracer = Tracer()
        with trace_scope(tracer):
            with span("query", engine="aqp"):
                with span("kernel", signature="s", cache_hit=False):
                    with span("scan", table="t", rows_scanned=1,
                              blocks_scanned=1):
                        pass
        sig = structural_signature(tracer.roots[0], ignore=("kernel",))
        assert sig == ("query", "ok", (("scan", "ok", ()),))

    def test_collapse_shards_folds_identical_subtrees(self):
        tracer = Tracer()
        with trace_scope(tracer):
            with span("query", engine="scatter_gather"):
                for i in range(4):
                    with span(f"shard.{i}") as sp:
                        sp.set(shard_status="served")
        sig = structural_signature(tracer.roots[0], collapse_shards=True)
        assert sig == ("query", "ok", (("shard.*", "ok", ()),))

    def test_collapse_shards_keeps_distinct_statuses(self):
        tracer = Tracer()
        with trace_scope(tracer):
            with span("query", engine="scatter_gather"):
                with span("shard.0") as sp:
                    sp.set(shard_status="served")
                with span("shard.1") as sp:
                    sp.set(shard_status="failed").fail("dead")
        sig = structural_signature(tracer.roots[0], collapse_shards=True)
        assert sig == (
            "query",
            "ok",
            (("shard.*", "ok", ()), ("shard.*", "error", ())),
        )

    def test_tracer_signature_splices_roots(self):
        tracer = Tracer()
        with trace_scope(tracer):
            with span("scan", table="t", rows_scanned=1, blocks_scanned=1):
                pass
            with span("kernel", signature="s", cache_hit=True):
                pass
        sig = tracer_signature(tracer, ignore=("kernel",))
        assert sig == (("scan", "ok", ()),)


# ----------------------------------------------------------------------
# EXPLAIN / EXPLAIN ANALYZE / CLI
# ----------------------------------------------------------------------

class TestExplain:
    def test_split_explain(self):
        assert split_explain("SELECT 1 AS x FROM t") == (
            None, "SELECT 1 AS x FROM t"
        )
        mode, inner = split_explain("EXPLAIN SELECT a FROM t")
        assert (mode, inner) == ("explain", "SELECT a FROM t")
        mode, inner = split_explain("explain analyze  SELECT a FROM t")
        assert (mode, inner) == ("analyze", "SELECT a FROM t")

    def test_split_explain_requires_statement(self):
        with pytest.raises(SQLSyntaxError):
            split_explain("EXPLAIN")
        with pytest.raises(SQLSyntaxError):
            split_explain("EXPLAIN ANALYZE")

    def test_explain_returns_plan_text(self, db):
        text = db.sql("EXPLAIN SELECT SUM(price) AS s FROM sales")
        assert isinstance(text, str)
        assert "Scan(sales" in text

    def test_explain_analyze_returns_result_and_trace(self, db):
        er = db.sql(
            "EXPLAIN ANALYZE SELECT SUM(price) AS s FROM sales "
            "WHERE price > 5"
        )
        assert isinstance(er, ExplainResult)
        # The query actually ran: the answer is available ...
        assert er.table.num_rows == 1
        exact = db.sql("SELECT SUM(price) AS s FROM sales WHERE price > 5")
        assert float(er.table["s"][0]) == float(exact.table["s"][0])
        # ... and the trace holds a schema-valid query tree.
        names = [s.name for s in er.tracer.walk()]
        assert names[0] == "query"
        assert "scan" in names and "plan" in names
        for root in er.tracer.roots:
            assert validate_span(root.to_dict()) == []

    def test_explain_analyze_render_sections(self, db):
        er = db.sql("EXPLAIN ANALYZE SELECT COUNT(*) AS c FROM sales")
        text = er.render(show_timing=False)
        assert text.startswith("EXPLAIN ANALYZE")
        assert "plan:" in text
        assert "trace:" in text
        assert "cost:" in text
        assert "rows_scanned=" in text

    def test_run_explain_analyze_approximate(self, db):
        er = run_explain_analyze(
            db,
            "SELECT SUM(price) AS s FROM sales "
            "ERROR WITHIN 10% CONFIDENCE 95%",
            seed=3,
        )
        assert er.tracer.find("query")
        assert er.tracer.find("query")[0].attributes["technique"] != ""


class TestTraceCLI:
    def _csv(self, tmp_path):
        path = tmp_path / "sales.csv"
        rng = np.random.default_rng(5)
        rows = ["price,qty"]
        rows += [f"{p:.3f},{q}" for p, q in zip(
            rng.exponential(10, 200), rng.integers(1, 5, 200)
        )]
        path.write_text("\n".join(rows) + "\n")
        return str(path)

    def test_trace_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main

        rc = main([
            "trace",
            "--csv", f"sales={self._csv(tmp_path)}",
            "--no-timing",
            "SELECT SUM(price) AS s FROM sales WHERE qty > 1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "+ query" in out
        assert "+ scan" in out

    def test_trace_subcommand_metrics(self, tmp_path, capsys):
        from repro.__main__ import main

        rc = main([
            "trace",
            "--csv", f"sales={self._csv(tmp_path)}",
            "--metrics",
            "SELECT COUNT(*) AS c FROM sales",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert '"counters"' in out

    def test_repl_runner_formats_explain(self, tmp_path):
        from repro.__main__ import run_query

        db = Database()
        db.create_table("t", {"x": np.arange(10.0)})
        plan = run_query(db, "EXPLAIN SELECT SUM(x) AS s FROM t", seed=0)
        assert "Scan(t" in plan
        transcript = run_query(
            db, "EXPLAIN ANALYZE SELECT SUM(x) AS s FROM t", seed=0
        )
        assert "trace:" in transcript


# ----------------------------------------------------------------------
# ExecutionStats.to_dict: one stats contract for every path
# ----------------------------------------------------------------------

STATS_KEYS = {
    "rows_scanned",
    "blocks_scanned",
    "rows_sampled",
    "join_input_rows",
    "agg_input_rows",
    "rows_output",
    "blocks_available",
    "fraction_blocks_read",
    "simulated_cost",
    "per_table",
}


class TestStatsContract:
    def test_to_dict_key_set_identical_across_paths(self, db):
        from repro.resilience.ladder import ResilientEngine
        from repro.sharding import ScatterGatherExecutor, ShardedTable
        from repro.sql.binder import bind_sql

        sql = "SELECT SUM(price) AS s FROM sales WHERE price > 2"
        plan = bind_sql(sql, db).plan
        _, fused_stats = db.execute(plan, optimize=False)
        _, mat_stats = db.execute(plan, optimize=False, fused=False)
        ladder_result = ResilientEngine(db, warn_on_degrade=False).sql(sql)
        sharded = ShardedTable.from_table(db.table("sales"), 3)
        shard_result = ScatterGatherExecutor(sharded, max_workers=1).sql(sql)

        docs = {
            "fused": fused_stats.to_dict(),
            "materializing": mat_stats.to_dict(),
            "ladder": ladder_result.stats.to_dict(),
            "sharded": shard_result.stats.to_dict(),
        }
        for path, doc in docs.items():
            assert set(doc) == STATS_KEYS, path
            json.dumps(doc)  # JSON-able by construction

    def test_to_dict_values_match_fields(self, db):
        plan_sql = "SELECT COUNT(*) AS c FROM sales"
        from repro.sql.binder import bind_sql

        _, stats = db.execute(bind_sql(plan_sql, db).plan, optimize=False)
        doc = stats.to_dict()
        assert doc["rows_scanned"] == stats.rows_scanned
        assert doc["blocks_scanned"] == stats.blocks_scanned
        assert doc["simulated_cost"] == stats.simulated_cost().total
        assert doc["per_table"]["sales"]["rows_scanned"] == 4000
