"""Tests for the SQL tokenizer."""

import pytest

from repro import SQLSyntaxError
from repro.sql.lexer import Token, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


class TestTokenKinds:
    def test_keywords_uppercased(self):
        assert kinds("select from")[0] == ("KEYWORD", "SELECT")

    def test_identifiers_preserve_case(self):
        assert kinds("MyTable")[0] == ("IDENT", "MyTable")

    def test_integer_and_float(self):
        assert kinds("42 3.14 .5")[1] == ("NUMBER", "3.14")
        assert kinds(".5")[0] == ("NUMBER", ".5")

    def test_scientific_notation(self):
        assert kinds("1e5 2.5E-3") == [("NUMBER", "1e5"), ("NUMBER", "2.5E-3")]

    def test_string_literal(self):
        assert kinds("'hello world'") == [("STRING", "hello world")]

    def test_escaped_quote(self):
        assert kinds("'it''s'") == [("STRING", "it's")]

    def test_quoted_identifier(self):
        assert kinds('"Weird Name"') == [("IDENT", "Weird Name")]

    def test_operators(self):
        ops = [v for k, v in kinds("a <= b <> c != d")]
        assert "<=" in ops and ops.count("<>") == 2  # != normalized to <>

    def test_comment_skipped(self):
        toks = kinds("select -- a comment\n 1")
        assert toks == [("KEYWORD", "SELECT"), ("NUMBER", "1")]

    def test_eof_token(self):
        assert tokenize("x")[-1].kind == "EOF"

    def test_positions_recorded(self):
        toks = tokenize("ab cd")
        assert toks[0].position == 0
        assert toks[1].position == 3


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError, match="unterminated string"):
            tokenize("'oops")

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SQLSyntaxError, match="identifier"):
            tokenize('"oops')

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError, match="unexpected character"):
            tokenize("a @ b")

    def test_error_has_position(self):
        try:
            tokenize("abc $")
        except SQLSyntaxError as e:
            assert e.position == 4


class TestTokenHelpers:
    def test_matches_keyword(self):
        tok = Token("KEYWORD", "SELECT", 0)
        assert tok.matches_keyword("SELECT", "FROM")
        assert not tok.matches_keyword("WHERE")

    def test_ident_does_not_match_keyword(self):
        tok = Token("IDENT", "SELECT", 0)
        assert not tok.matches_keyword("SELECT")
