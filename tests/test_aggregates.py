"""Tests for aggregate kernels, checked against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PlanError, Table
from repro.engine.aggregates import (
    AggregateSpec,
    compute_aggregate,
    compute_grouped_aggregate,
    encode_groups,
    grouped_count_distinct,
    grouped_var,
)
from repro.engine.expressions import col


class TestAggregateSpec:
    def test_count_star(self):
        spec = AggregateSpec("count", None, "c")
        assert spec.is_linear

    def test_count_distinct_via_flag(self):
        spec = AggregateSpec("count", col("x"), "c", distinct=True)
        assert spec.func == "count_distinct"
        assert not spec.is_linear

    def test_sum_requires_argument(self):
        with pytest.raises(PlanError):
            AggregateSpec("sum", None, "s")

    def test_unknown_function(self):
        with pytest.raises(PlanError):
            AggregateSpec("median", col("x"), "m")

    def test_min_max_not_linear(self):
        assert not AggregateSpec("min", col("x"), "m").is_linear
        assert not AggregateSpec("max", col("x"), "m").is_linear


class TestEncodeGroups:
    def test_single_key(self):
        ids, keys = encode_groups([np.array(["b", "a", "b"], dtype=object)])
        assert len(keys) == 2
        assert ids[0] == ids[2] != ids[1]

    def test_composite_key(self):
        a = np.array([1, 1, 2, 2])
        b = np.array(["x", "y", "x", "x"], dtype=object)
        ids, keys = encode_groups([a, b])
        assert len(keys) == 3
        assert (1, "x") in keys and (2, "x") in keys

    def test_composite_ids_consistent(self):
        a = np.array([1, 2, 1, 2, 1])
        b = np.array([9, 9, 9, 8, 9])
        ids, keys = encode_groups([a, b])
        # rows 0, 2, 4 share (1, 9)
        assert ids[0] == ids[2] == ids[4]

    def test_empty(self):
        ids, keys = encode_groups([np.array([])])
        assert len(ids) == 0 and keys == []

    @given(
        st.lists(st.integers(0, 5), min_size=1, max_size=50),
        st.lists(st.integers(0, 3), min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_matches_python_grouping(self, xs, ys):
        n = min(len(xs), len(ys))
        a = np.asarray(xs[:n])
        b = np.asarray(ys[:n])
        ids, keys = encode_groups([a, b])
        assert len(keys) == len({(x, y) for x, y in zip(a.tolist(), b.tolist())})
        for i in range(n):
            assert keys[ids[i]] == (a[i], b[i])


class TestScalarAggregates:
    @pytest.fixture
    def table(self):
        return Table({"v": np.array([1.0, 2.0, 3.0, 4.0]), "g": np.array([1, 1, 2, 2])})

    @pytest.mark.parametrize(
        "func,expected",
        [("sum", 10.0), ("avg", 2.5), ("min", 1.0), ("max", 4.0)],
    )
    def test_values(self, table, func, expected):
        spec = AggregateSpec(func, col("v"), "out")
        assert compute_aggregate(spec, table) == pytest.approx(expected)

    def test_count(self, table):
        assert compute_aggregate(AggregateSpec("count", None, "c"), table) == 4

    def test_count_distinct(self, table):
        spec = AggregateSpec("count", col("g"), "d", distinct=True)
        assert compute_aggregate(spec, table) == 2

    def test_var_stddev(self, table):
        var = compute_aggregate(AggregateSpec("var", col("v"), "v2"), table)
        std = compute_aggregate(AggregateSpec("stddev", col("v"), "sd"), table)
        assert var == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
        assert std == pytest.approx(np.sqrt(var))

    def test_empty_table_sum_zero(self):
        t = Table({"v": np.array([])})
        assert compute_aggregate(AggregateSpec("sum", col("v"), "s"), t) == 0.0

    def test_empty_table_avg_nan(self):
        t = Table({"v": np.array([])})
        assert np.isnan(compute_aggregate(AggregateSpec("avg", col("v"), "a"), t))


class TestGroupedAggregates:
    def _check(self, func, rng):
        n = 500
        t = Table(
            {"v": rng.normal(10, 5, n), "g": rng.integers(0, 7, n)}
        )
        ids, keys = encode_groups([t["g"]])
        spec = AggregateSpec(func, col("v") if func != "count" else None, "out")
        out = compute_grouped_aggregate(spec, t, ids, len(keys))
        for gi, (k,) in enumerate(keys):
            vals = t["v"][t["g"] == k]
            if func == "sum":
                expected = vals.sum()
            elif func == "count":
                expected = len(vals)
            elif func == "avg":
                expected = vals.mean()
            elif func == "min":
                expected = vals.min()
            elif func == "max":
                expected = vals.max()
            assert out[gi] == pytest.approx(expected)

    @pytest.mark.parametrize("func", ["sum", "count", "avg", "min", "max"])
    def test_matches_brute_force(self, func, rng):
        self._check(func, rng)

    def test_grouped_var_matches_numpy(self, rng):
        n = 300
        vals = rng.normal(0, 1, n)
        groups = rng.integers(0, 5, n)
        out = grouped_var(groups, vals, 5)
        for g in range(5):
            assert out[g] == pytest.approx(np.var(vals[groups == g], ddof=1))

    def test_grouped_var_singleton_nan(self):
        out = grouped_var(np.array([0]), np.array([5.0]), 1)
        assert np.isnan(out[0])

    def test_grouped_count_distinct(self, rng):
        n = 400
        vals = rng.integers(0, 10, n)
        groups = rng.integers(0, 4, n)
        out = grouped_count_distinct(groups, vals, 4)
        for g in range(4):
            assert out[g] == len(np.unique(vals[groups == g]))

    def test_grouped_count_distinct_strings(self):
        vals = np.array(["a", "b", "a", "c"], dtype=object)
        groups = np.array([0, 0, 1, 1])
        out = grouped_count_distinct(groups, vals, 2)
        assert out.tolist() == [2.0, 2.0]

    def test_grouped_count_distinct_empty(self):
        out = grouped_count_distinct(np.array([], dtype=np.int64), np.array([]), 0)
        assert len(out) == 0
