"""Tests for the columnar Table."""

import numpy as np
import pytest

from repro import SchemaError, Table


def make(n=10, block_size=4):
    return Table(
        {"a": np.arange(n), "b": np.arange(n) * 2.0},
        name="t",
        block_size=block_size,
    )


class TestConstruction:
    def test_basic(self):
        t = make()
        assert t.num_rows == 10
        assert t.num_columns == 2
        assert t.column_names == ["a", "b"]

    def test_empty(self):
        t = Table({})
        assert t.num_rows == 0
        assert t.num_blocks == 0

    def test_length_mismatch(self):
        with pytest.raises(SchemaError, match="rows"):
            Table({"a": [1, 2], "b": [1, 2, 3]})

    def test_2d_rejected(self):
        with pytest.raises(SchemaError, match="1-D"):
            Table({"a": np.zeros((2, 2))})

    def test_bad_block_size(self):
        with pytest.raises(SchemaError):
            Table({"a": [1]}, block_size=0)

    def test_strings_become_object(self):
        t = Table({"s": ["x", "y"]})
        assert t["s"].dtype == object

    def test_bools_preserved(self):
        t = Table({"f": [True, False]})
        assert t["f"].dtype == bool

    def test_missing_column(self):
        with pytest.raises(SchemaError, match="no column"):
            make()["nope"]


class TestDerivation:
    def test_take_indices(self):
        t = make().take(np.array([1, 3, 5]))
        assert t["a"].tolist() == [1, 3, 5]

    def test_take_mask(self):
        t = make()
        out = t.take(t["a"] % 2 == 0)
        assert out["a"].tolist() == [0, 2, 4, 6, 8]

    def test_take_bad_mask_length(self):
        with pytest.raises(SchemaError):
            make().take(np.array([True, False]))

    def test_select(self):
        t = make().select(["b"])
        assert t.column_names == ["b"]

    def test_rename(self):
        t = make().rename({"a": "x"})
        assert "x" in t and "a" not in t

    def test_with_column_adds(self):
        t = make().with_column("c", np.zeros(10))
        assert t.num_columns == 3

    def test_with_column_replaces(self):
        t = make().with_column("a", np.zeros(10))
        assert t["a"].sum() == 0

    def test_head(self):
        assert make().head(3).num_rows == 3

    def test_head_overlong(self):
        assert make().head(100).num_rows == 10

    def test_slice_rows(self):
        t = make().slice_rows(2, 5)
        assert t["a"].tolist() == [2, 3, 4]

    def test_concat(self):
        t = Table.concat([make(3), make(4)])
        assert t.num_rows == 7

    def test_concat_schema_mismatch(self):
        with pytest.raises(SchemaError, match="UNION"):
            Table.concat([make(), Table({"x": [1]})])

    def test_concat_empty_list(self):
        assert Table.concat([]).num_rows == 0

    def test_empty_like(self):
        t = Table.empty_like(make())
        assert t.num_rows == 0
        assert t.column_names == ["a", "b"]


class TestBlocks:
    def test_num_blocks(self):
        assert make(10, 4).num_blocks == 3

    def test_block_bounds(self):
        t = make(10, 4)
        assert t.block_bounds(0) == (0, 4)
        assert t.block_bounds(2) == (8, 10)  # short last block

    def test_block_bounds_out_of_range(self):
        with pytest.raises(IndexError):
            make(10, 4).block_bounds(3)

    def test_block_contents(self):
        t = make(10, 4)
        assert t.block(1)["a"].tolist() == [4, 5, 6, 7]

    def test_block_ids_of_rows(self):
        t = make(10, 4)
        ids = t.block_ids_of_rows(np.array([0, 4, 9]))
        assert ids.tolist() == [0, 1, 2]


class TestConvenience:
    def test_iter_rows(self):
        rows = list(make(3).iter_rows())
        assert rows[1] == (1, 2.0)

    def test_to_pylist(self):
        rows = make(2).to_pylist()
        assert rows == [{"a": 0, "b": 0.0}, {"a": 1, "b": 2.0}]

    def test_estimated_bytes_positive(self):
        assert make().estimated_bytes() > 0

    def test_estimated_bytes_object_columns(self):
        t = Table({"s": ["hello"] * 10})
        assert t.estimated_bytes() >= 10 * 24


class TestFingerprint:
    def test_stable_across_instances(self):
        a = make(50)
        b = make(50)
        assert a.fingerprint() == b.fingerprint()

    def test_cached_per_instance(self):
        t = make(50)
        assert t.fingerprint() is t.fingerprint()

    def test_detects_length_change(self):
        assert make(50).fingerprint() != make(51).fingerprint()

    def test_detects_content_change(self):
        base = make(50)
        cols = base.columns_dict()
        cols["a"] = cols["a"].copy()
        cols["a"][0] += 1
        changed = Table(cols, name="t", block_size=4)
        assert base.fingerprint() != changed.fingerprint()

    def test_detects_row_permutation(self):
        cols = make(50).columns_dict()
        permuted = {k: v[::-1].copy() for k, v in cols.items()}
        assert (
            Table(cols, name="t").fingerprint()
            != Table(permuted, name="t").fingerprint()
        )

    def test_detects_schema_change(self):
        t = make(10)
        renamed = Table(
            {"z" if k == "a" else k: v for k, v in t.columns_dict().items()},
            name="t",
        )
        retyped = Table(
            {k: (v.astype(np.float32) if k == "b" else v)
             for k, v in t.columns_dict().items()},
            name="t",
        )
        assert t.fingerprint() != renamed.fingerprint()
        assert t.fingerprint() != retyped.fingerprint()

    def test_detects_string_column_change(self):
        a = Table({"s": ["x", "y", "z"]}, name="t")
        b = Table({"s": ["x", "y", "w"]}, name="t")
        assert a.fingerprint() != b.fingerprint()

    def test_empty_table(self):
        assert Table({}).fingerprint() == Table({}).fingerprint()

    def test_large_table_samples_rows(self):
        # Only ~64 probe rows are hashed, so fingerprinting stays cheap
        # even for big tables — and endpoints are always probed.
        big = Table({"a": np.arange(200_000)}, name="t")
        tweaked_cols = {"a": np.arange(200_000).copy()}
        tweaked_cols["a"][-1] = -1
        assert big.fingerprint() != Table(tweaked_cols, name="t").fingerprint()
