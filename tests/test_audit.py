"""Tests for the statistical guarantee-audit subsystem.

Fast unit tests for the acceptance-band math, the exact oracle, and the
report/baseline plumbing — plus a ``@pytest.mark.audit`` smoke-coverage
test that runs the real path registry end to end (also exercised by
``python -m repro audit --smoke`` in CI).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.audit import (
    ExactOracle,
    binomial_acceptance_band,
    binomial_cdf,
    build_paths,
    chi2_upper_bound,
    coverage_lower_bound,
    coverage_verdict,
    diff_against_baseline,
    mc_mean_within,
    run_audit,
    within_sigma,
    write_report,
)
from repro.audit.report import format_table, format_value
from repro.audit.runner import trial_seed
from repro.core.result import CellEstimate
from repro.estimators.closed_form import Estimate


# ----------------------------------------------------------------------
# Acceptance-band math
# ----------------------------------------------------------------------
class TestBinomialBands:
    def test_cdf_matches_closed_form(self):
        # Binomial(3, 0.5): P(X<=1) = (1+3)/8
        assert binomial_cdf(1, 3, 0.5) == pytest.approx(0.5)
        assert binomial_cdf(-1, 10, 0.3) == 0.0
        assert binomial_cdf(10, 10, 0.3) == 1.0

    def test_cdf_agrees_with_numpy_simulation(self):
        rng = np.random.default_rng(0)
        draws = rng.binomial(40, 0.95, size=200_000)
        emp = float(np.mean(draws <= 36))
        assert binomial_cdf(36, 40, 0.95) == pytest.approx(emp, abs=0.005)

    def test_band_contains_mean_and_respects_alpha(self):
        n, p, alpha = 200, 0.95, 1e-3
        k_lo, k_hi = binomial_acceptance_band(n, p, alpha)
        assert k_lo <= int(n * p) <= k_hi
        # The band's miss probability is at most alpha (tail sums).
        miss = binomial_cdf(k_lo - 1, n, p) + (1.0 - binomial_cdf(k_hi, n, p))
        assert miss <= alpha

    def test_degenerate_claims(self):
        assert binomial_acceptance_band(50, 1.0) == (50, 50)
        assert binomial_acceptance_band(50, 0.0) == (0, 0)
        # A deterministic bound (p=1) rejects on the very first miss.
        assert coverage_verdict(49, 50, 1.0) == "fail_under"
        assert coverage_verdict(50, 50, 1.0) == "pass"

    def test_verdict_three_way(self):
        # Binomial(100, 0.7): far-below fails, far-above is conservative.
        assert coverage_verdict(45, 100, 0.7) == "fail_under"
        assert coverage_verdict(70, 100, 0.7) == "pass"
        assert coverage_verdict(95, 100, 0.7) == "conservative"

    def test_lower_bound_monotone_in_trials(self):
        fracs = [coverage_lower_bound(n, 0.95) / n for n in (20, 100, 500)]
        # More trials -> tighter (higher) empirical floor.
        assert fracs == sorted(fracs)
        assert all(f < 0.95 for f in fracs)

    def test_chi2_upper_bound_reference_value(self):
        # chi2(0.999, df=19) = 43.82 (standard tables)
        assert chi2_upper_bound(19) == pytest.approx(43.82, abs=0.05)

    def test_mc_mean_within(self):
        rng = np.random.default_rng(3)
        values = rng.normal(10.0, 1.0, 500).tolist()
        assert mc_mean_within(values, 10.0)
        assert not mc_mean_within(values, 11.0)

    def test_within_sigma(self):
        est = Estimate(value=100.0, variance=4.0, sample_size=50)
        assert within_sigma(est, 105.0, k=4.0)  # 2.5 sigma off
        assert not within_sigma(est, 120.0, k=4.0)  # 10 sigma off


# ----------------------------------------------------------------------
# covers() plumbing on result types
# ----------------------------------------------------------------------
class TestCovers:
    def test_cell_estimate_covers(self):
        cell = CellEstimate(value=10.0, ci_low=8.0, ci_high=12.0)
        assert cell.covers(8.0) and cell.covers(12.0)
        assert not cell.covers(7.99)

    def test_closed_form_estimate_covers(self):
        est = Estimate(value=100.0, variance=25.0, sample_size=200)
        assert est.covers(100.0)
        assert not est.covers(200.0)


# ----------------------------------------------------------------------
# Exact oracle
# ----------------------------------------------------------------------
class TestExactOracle:
    def test_memoizes_engine_results(self, small_db):
        oracle = ExactOracle(small_db)
        sql = "SELECT SUM(price) AS s FROM sales"
        first = oracle.query(sql)
        assert oracle.query(sql) is first  # cache hit, same object
        assert oracle.scalar(sql) == pytest.approx(360.0)

    def test_groups(self, small_db):
        oracle = ExactOracle(small_db)
        groups = oracle.groups(
            "SELECT region AS r, SUM(price) AS s FROM sales GROUP BY region",
            "r",
            "s",
        )
        assert groups == {"e": pytest.approx(150.0), "w": pytest.approx(210.0)}

    def test_columnar_truths(self, small_db):
        oracle = ExactOracle(small_db)
        assert oracle.distinct_count("sales", "region") == 2
        assert oracle.frequencies("sales", "region")["e"] == 4
        assert oracle.range_count("sales", "price", 20.0, 40.0) == 3
        assert oracle.column_sum("sales", "price") == pytest.approx(360.0)
        assert oracle.group_sums("sales", "region", "qty")["w"] == pytest.approx(13.0)


# ----------------------------------------------------------------------
# Runner determinism and report shape
# ----------------------------------------------------------------------
FAST_PATHS = ["srs_sum", "countmin_point", "histogram_equidepth_range"]


class TestRunner:
    def test_trial_seeds_are_distinct_and_stable(self):
        seeds = {trial_seed(1729, name, t) for name in FAST_PATHS for t in range(10)}
        assert len(seeds) == 30
        assert trial_seed(1729, "srs_sum", 0) == trial_seed(1729, "srs_sum", 0)
        assert trial_seed(1729, "srs_sum", 0) != trial_seed(1730, "srs_sum", 0)

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError, match="unknown audit paths"):
            run_audit(smoke=True, path_names=["no_such_path"])

    @pytest.mark.statistical
    def test_report_deterministic_modulo_timing(self):
        kwargs = dict(smoke=True, seed=99, trials=6, heavy_trials=2,
                      path_names=FAST_PATHS)
        a, b = run_audit(**kwargs), run_audit(**kwargs)
        a.pop("timing"), b.pop("timing")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    @pytest.mark.statistical
    def test_report_structure(self):
        doc = run_audit(smoke=True, trials=6, heavy_trials=2,
                        path_names=FAST_PATHS)
        assert doc["mode"] == "smoke"
        assert {p["name"] for p in doc["paths"]} == set(FAST_PATHS)
        for p in doc["paths"]:
            assert p["trials"] == p["effective_trials"] + p["refusals"]
            assert 0 <= p["hits"] <= p["effective_trials"]
            assert p["verdict"] in (
                "pass", "fail_under", "conservative", "n/a", "all_refused"
            )
        assert "total" in doc["timing"]


# ----------------------------------------------------------------------
# Report formatting + baseline diff
# ----------------------------------------------------------------------
def _fake_doc(mode="smoke", **path_overrides):
    path = {
        "name": "p1",
        "verdict": "pass",
        "guarantee_ok": True,
        "expected_failure": False,
        "empirical_coverage": 0.96,
        "claimed_coverage": 0.95,
    }
    path.update(path_overrides)
    return {"mode": mode, "paths": [path]}


class TestReport:
    def test_format_table_alignment(self):
        lines = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) <= {"-", " "}
        assert len({len(l) for l in lines}) == 1  # fixed width

    def test_format_value(self):
        assert format_value(0.0) == "0"
        assert format_value(1234.5) == "1.23e+03"
        assert format_value(0.25) == "0.25"

    def test_missing_baseline_is_note(self, tmp_path):
        problems = diff_against_baseline(
            _fake_doc(), baseline_path=str(tmp_path / "nope.json")
        )
        assert len(problems) == 1 and problems[0].startswith("note:")

    def test_mode_mismatch_is_note(self, tmp_path):
        base = tmp_path / "b.json"
        write_report(_fake_doc(mode="full"), str(base))
        problems = diff_against_baseline(_fake_doc(mode="smoke"), str(base))
        assert len(problems) == 1 and "mode" in problems[0]

    def test_guarantee_regression_flagged(self, tmp_path):
        base = tmp_path / "b.json"
        write_report(_fake_doc(), str(base))
        broken = _fake_doc(verdict="fail_under", guarantee_ok=False)
        problems = diff_against_baseline(broken, str(base))
        assert any("guarantee held in baseline" in p for p in problems)
        assert diff_against_baseline(_fake_doc(), str(base)) == []

    def test_missing_path_flagged(self, tmp_path):
        base = tmp_path / "b.json"
        write_report(_fake_doc(), str(base))
        doc = _fake_doc()
        doc["paths"] = []
        problems = diff_against_baseline(doc, str(base))
        assert any("missing now" in p for p in problems)

    def test_expected_failure_recovery_is_note(self, tmp_path):
        base = tmp_path / "b.json"
        write_report(
            _fake_doc(
                verdict="fail_under", expected_failure=True, guarantee_ok=True
            ),
            str(base),
        )
        recovered = _fake_doc(
            verdict="pass", expected_failure=True, guarantee_ok=True
        )
        problems = diff_against_baseline(recovered, str(base))
        assert len(problems) == 1
        assert problems[0].startswith("note:") and "no longer" in problems[0]


# ----------------------------------------------------------------------
# End-to-end smoke coverage of the real registry
# ----------------------------------------------------------------------
@pytest.mark.audit
@pytest.mark.slow
@pytest.mark.statistical
def test_smoke_audit_guarantees_hold():
    """The acceptance gate: every claimed guarantee passes its binomial
    band (or is a recorded paper-predicted failure) on the smoke audit."""
    doc = run_audit(smoke=True)
    assert doc["summary"]["num_audited"] >= 8
    assert doc["summary"]["num_unexpected_failures"] == 0
    assert doc["summary"]["all_guarantees_ok"]
    # The paper-predicted breakages must keep reproducing: losing them
    # means the audit lost its statistical power (or behavior changed).
    by_name = {p["name"]: p for p in doc["paths"]}
    assert by_name["bernoulli_sum_heavytail"]["verdict"] == "fail_under"
    assert by_name["ola_peeking_stop"]["verdict"] == "fail_under"
    # Every registered path actually produced answers.
    assert all(p["effective_trials"] > 0 for p in doc["paths"])


@pytest.mark.audit
def test_registry_well_formed():
    paths = build_paths()
    names = [p.name for p in paths]
    assert len(names) == len(set(names))
    assert len(paths) >= 15
    families = {p.family for p in paths}
    assert {"sampling", "offline", "online", "engine", "sketch", "synopsis"} <= families
    for p in paths:
        if p.claim == "none":
            assert p.claimed_coverage is None
        else:
            assert 0.0 < p.claimed_coverage <= 1.0
