"""Tests for the resilience serving layer.

Covers the cooperative deadline/budget objects, their threading through
the executor and the online loops, the deterministic retry/backoff and
circuit-breaker pair, the synopsis cache's failed-build semantics, the
fault injector, and the degradation ladder's rung-by-rung behaviour.
The randomized fault sweeps live in ``test_chaos.py``.
"""

from __future__ import annotations

import math
import warnings

import numpy as np
import pytest

from repro.core.exceptions import (
    BudgetExhausted,
    DeadlineExceeded,
    DegradedAnswer,
    InjectedFault,
    QueryRefused,
    SynopsisUnavailable,
)
from repro.engine.database import Database
from repro.engine.table import Table
from repro.offline.catalog import SampleEntry, SynopsisCatalog
from repro.online.ola import OnlineAggregator
from repro.online.ripple import RippleJoin
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    FaultInjector,
    FaultSpec,
    LADDER_RUNGS,
    ManualClock,
    ResilientEngine,
    ResourceBudget,
    RetryPolicy,
    deadline_scope,
    inject,
)
from repro.resilience.deadline import current_budget, current_deadline
from repro.sampling.row import srs_sample
from repro.storage.synopsis_cache import SynopsisCache


# ----------------------------------------------------------------------
# Deadline / ResourceBudget
# ----------------------------------------------------------------------

class TestDeadline:
    def test_manual_clock_drives_expiry(self):
        clock = ManualClock()
        dl = Deadline(5.0, clock=clock)
        assert not dl.expired
        assert dl.remaining() == pytest.approx(5.0)
        clock.advance(4.0)
        assert not dl.expired
        clock.advance(1.5)
        assert dl.expired
        assert dl.elapsed() == pytest.approx(5.5)

    def test_check_raises_with_site(self):
        clock = ManualClock()
        dl = Deadline(1.0, clock=clock)
        dl.check(site="warmup")  # no-op before expiry
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded) as exc_info:
            dl.check(site="scan:sales")
        assert exc_info.value.site == "scan:sales"
        assert dl.fired_sites == ["scan:sales"]

    def test_grace_window(self):
        clock = ManualClock()
        dl = Deadline(10.0, clock=clock, grace_fraction=0.10)
        clock.advance(10.5)
        assert dl.expired
        assert dl.within_grace()
        clock.advance(0.6)  # now at 11.1 > 10 * 1.1
        assert not dl.within_grace()

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(1.0, grace_fraction=-0.1)
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)


class TestResourceBudget:
    def test_rows_exhaustion(self):
        budget = ResourceBudget(max_rows=100)
        budget.charge(rows=60)
        assert budget.remaining_rows() == 40
        with pytest.raises(BudgetExhausted) as exc_info:
            budget.charge(rows=50, site="scan:t")
        assert exc_info.value.resource == "rows"

    def test_blocks_exhaustion(self):
        budget = ResourceBudget(max_blocks=2)
        budget.charge(blocks=2)
        with pytest.raises(BudgetExhausted) as exc_info:
            budget.charge(blocks=1)
        assert exc_info.value.resource == "blocks"

    def test_unlimited_by_default(self):
        budget = ResourceBudget()
        budget.charge(rows=10**9, blocks=10**6)
        assert budget.remaining_rows() is None


class TestDeadlineScope:
    def test_ambient_propagation_and_reset(self):
        assert current_deadline() is None
        dl = Deadline(5.0, clock=ManualClock())
        budget = ResourceBudget(max_rows=10)
        with deadline_scope(dl, budget):
            assert current_deadline() is dl
            assert current_budget() is budget
        assert current_deadline() is None
        assert current_budget() is None

    def test_none_inherits_enclosing_scope(self):
        dl = Deadline(5.0, clock=ManualClock())
        inner_budget = ResourceBudget(max_rows=10)
        with deadline_scope(dl, None):
            with deadline_scope(None, inner_budget):
                # The nested scope tightens the budget without losing
                # the outer deadline.
                assert current_deadline() is dl
                assert current_budget() is inner_budget
            assert current_budget() is None


# ----------------------------------------------------------------------
# Executor threading
# ----------------------------------------------------------------------

@pytest.fixture
def small_db():
    rng = np.random.default_rng(7)
    db = Database()
    db.create_table(
        "t",
        {"x": rng.exponential(10.0, 4000), "g": rng.integers(0, 4, 4000)},
    )
    return db


class TestExecutorLimits:
    def test_expired_deadline_raises_from_exact_query(self, small_db):
        clock = ManualClock()
        dl = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded):
            small_db.sql("SELECT SUM(x) AS s FROM t", deadline=dl)
        assert dl.fired_sites  # the checkpoint recorded where it fired

    def test_row_budget_raises_from_exact_query(self, small_db):
        with pytest.raises(BudgetExhausted):
            small_db.sql(
                "SELECT SUM(x) AS s FROM t",
                budget=ResourceBudget(max_rows=100),
            )

    def test_generous_limits_leave_answer_unchanged(self, small_db):
        plain = small_db.sql("SELECT SUM(x) AS s FROM t")
        bounded = small_db.sql(
            "SELECT SUM(x) AS s FROM t",
            deadline=Deadline(1e9),
            budget=ResourceBudget(max_rows=10**9),
        )
        assert bounded.scalar() == pytest.approx(plain.scalar())

    def test_ambient_scope_reaches_executor(self, small_db):
        clock = ManualClock()
        dl = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        with deadline_scope(dl):
            with pytest.raises(DeadlineExceeded):
                small_db.sql("SELECT SUM(x) AS s FROM t")


# ----------------------------------------------------------------------
# Retry / circuit breaker
# ----------------------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_is_deterministic_under_a_seed(self):
        a = RetryPolicy(max_attempts=5, seed=11)
        b = RetryPolicy(max_attempts=5, seed=11)
        assert [a.backoff(k) for k in range(4)] == [
            b.backoff(k) for k in range(4)
        ]

    def test_retries_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=3, seed=0, retry_on=(OSError,))
        assert policy.call(flaky, site="build") == "ok"
        assert calls["n"] == 3
        assert len(policy.delays) == 2

    def test_exhausted_attempts_reraise_last_error(self):
        policy = RetryPolicy(max_attempts=2, seed=0, retry_on=(OSError,))
        with pytest.raises(OSError):
            policy.call(lambda: (_ for _ in ()).throw(OSError("boom")))

    def test_deadline_exceeded_is_never_retried(self):
        calls = {"n": 0}

        def dies():
            calls["n"] += 1
            raise DeadlineExceeded("late", site="inner")

        policy = RetryPolicy(max_attempts=5, seed=0)
        with pytest.raises(DeadlineExceeded):
            policy.call(dies)
        assert calls["n"] == 1

    def test_non_transient_errors_propagate_immediately(self):
        calls = {"n": 0}

        def bug():
            calls["n"] += 1
            raise ValueError("a bug, not weather")

        policy = RetryPolicy(max_attempts=3, seed=0, retry_on=(OSError,))
        with pytest.raises(ValueError):
            policy.call(bug)
        assert calls["n"] == 1

    def test_deadline_checked_between_attempts(self):
        clock = ManualClock()
        dl = Deadline(1.0, clock=clock)

        def fail_and_stall():
            clock.advance(2.0)
            raise OSError("slow failure")

        policy = RetryPolicy(max_attempts=3, seed=0, retry_on=(OSError,))
        with pytest.raises(DeadlineExceeded):
            policy.call(fail_and_stall, site="build", deadline=dl)

    def test_backoff_never_sleeps_past_the_deadline(self):
        clock = ManualClock()
        dl = Deadline(1.0, clock=clock)
        policy = RetryPolicy(
            max_attempts=3,
            base_delay=10.0,
            max_delay=10.0,
            jitter=0.0,
            seed=0,
            sleeper=clock.advance,
            retry_on=(OSError,),
        )

        def always_fails():
            raise OSError("transient")

        # The un-capped schedule would sleep 10s; the cap trims it to the
        # deadline's remaining 1s, and the between-attempt check then
        # converts the exhausted budget into DeadlineExceeded.
        with pytest.raises(DeadlineExceeded):
            policy.call(always_fails, site="build", deadline=dl)
        assert policy.delays == [1.0]
        assert clock.now() == pytest.approx(1.0)

    def test_backoff_cap_uses_the_ambient_deadline(self):
        clock = ManualClock()
        dl = Deadline(0.5, clock=clock)
        policy = RetryPolicy(
            max_attempts=2,
            base_delay=10.0,
            max_delay=10.0,
            jitter=0.0,
            seed=0,
            sleeper=clock.advance,
            retry_on=(OSError,),
        )
        with deadline_scope(dl):
            with pytest.raises(DeadlineExceeded):
                policy.call(lambda: (_ for _ in ()).throw(OSError("x")))
        assert policy.delays == [0.5]
        assert clock.now() == pytest.approx(0.5)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_half_opens_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=2)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert not breaker.allow()
        # cooldown consumed: half-open lets a probe through
        assert breaker.state == "half_open"
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure()
        assert breaker.state == "open"
        breaker.allow()  # cooldown rejection -> half_open
        assert breaker.allow()  # probe admitted
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.times_opened == 2

    def test_retry_policy_respects_open_breaker(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=100)
        breaker.record_failure()
        policy = RetryPolicy(max_attempts=3, seed=0)
        calls = {"n": 0}

        def never_called():
            calls["n"] += 1
            return "x"

        with pytest.raises(SynopsisUnavailable):
            policy.call(never_called, site="build", breaker=breaker)
        assert calls["n"] == 0

    def test_reopen_does_not_count_an_ordinary_failure(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=1)
        breaker.record_failure()
        breaker.allow()  # closed: allowed, failure count stands at 1
        breaker.reopen()
        assert breaker.state == "open"
        assert breaker.times_opened == 1
        assert breaker.total_failures == 1
        assert breaker.consecutive_failures == 1

    def test_aborted_half_open_probe_reopens_without_a_failure(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=1)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        breaker.allow()  # cooldown rejection -> half_open
        assert breaker.state == "half_open"

        calls = {"n": 0}

        def probe_blows_deadline():
            calls["n"] += 1
            raise DeadlineExceeded("probe aborted", site="probe")

        policy = RetryPolicy(max_attempts=3, seed=0, retry_on=(OSError,))
        with pytest.raises(DeadlineExceeded):
            policy.call(
                probe_blows_deadline, site="build", breaker=breaker
            )
        # the deadline abort consumed no retries ...
        assert calls["n"] == 1
        assert policy.delays == []
        # ... and the breaker is back to open — but the abort was not
        # recorded as an observed failure (the probe's health is unknown)
        assert breaker.state == "open"
        assert breaker.total_failures == 2
        assert breaker.times_opened == 2


# ----------------------------------------------------------------------
# Synopsis cache: failed builds must not poison
# ----------------------------------------------------------------------

class TestCacheFailedBuilds:
    def _table_key(self):
        return ("t", "fp-abc")

    def test_failed_build_is_not_cached(self):
        cache = SynopsisCache()

        def bad_builder():
            raise OSError("store hiccup")

        with pytest.raises(OSError):
            cache.get_or_build(self._table_key(), "sketch:hll", bad_builder)
        assert cache.stats.failed_builds == 1
        # The miss stays a miss: the next lookup does not see a poisoned
        # entry and the builder runs again.
        assert (
            cache.get(cache.make_key(self._table_key(), "sketch:hll")) is None
        )
        value = cache.get_or_build(
            self._table_key(), "sketch:hll", lambda: "good"
        )
        assert value == "good"

    def test_failed_refresh_evicts_previous_entry(self):
        cache = SynopsisCache()
        key_src = self._table_key()
        cache.get_or_build(key_src, "sketch:hll", lambda: "v1")

        def partial_builder():
            # A builder that self-registers a partial result before
            # dying — the classic poisoned-entry bug.
            cache.put(cache.make_key(key_src, "sketch:hll"), "partial")
            raise OSError("died mid-build")

        with pytest.raises(OSError):
            cache.get_or_build(
                key_src, "sketch:hll", partial_builder, refresh=True
            )
        assert cache.get(cache.make_key(key_src, "sketch:hll")) is None
        assert cache.stats.failed_builds == 1

    def test_refresh_rebuilds_unconditionally(self):
        cache = SynopsisCache()
        key_src = self._table_key()
        cache.get_or_build(key_src, "sketch:hll", lambda: "v1")
        value = cache.get_or_build(
            key_src, "sketch:hll", lambda: "v2", refresh=True
        )
        assert value == "v2"
        assert cache.get(cache.make_key(key_src, "sketch:hll")) == "v2"

    def test_evict_reports_whether_anything_was_dropped(self):
        cache = SynopsisCache()
        key = cache.make_key(self._table_key(), "sketch:hll")
        assert not cache.evict(key)
        cache.put(key, "v", nbytes=8)
        assert cache.evict(key)
        assert cache.current_bytes == 0

    def test_injected_eviction_forces_rebuild(self):
        cache = SynopsisCache()
        key_src = self._table_key()
        builds = {"n": 0}

        def counting_builder():
            builds["n"] += 1
            return f"v{builds['n']}"

        cache.get_or_build(key_src, "sketch:hll", counting_builder)
        injector = FaultInjector(
            [FaultSpec(site="cache.lookup", kind="evict", max_fires=1)]
        )
        with inject(injector):
            cache.get_or_build(key_src, "sketch:hll", counting_builder)
        assert builds["n"] == 2  # the eviction made the lookup a miss
        assert injector.fired_at("cache.lookup") == 1


# ----------------------------------------------------------------------
# Catalog: stale gate + sketch-build breaker
# ----------------------------------------------------------------------

class TestCatalogResilience:
    def _stale_catalog(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(10.0, 4000)
        db = Database()
        db.create_table("t", {"x": values})
        prefix = 3000
        sample = srs_sample(
            Table({"x": values[:prefix]}, name="t"), 500, rng
        )
        catalog = SynopsisCatalog(db)
        catalog.add_sample(
            SampleEntry(
                table="t", sample=sample, kind="uniform",
                built_at_rows=prefix,
            )
        )
        return db, catalog

    def test_allow_stale_suspends_freshness_gate(self):
        _, catalog = self._stale_catalog()
        assert catalog.find_sample("t") is None  # stale: gated out
        with catalog.allow_stale():
            assert catalog.find_sample("t") is not None
        assert catalog.find_sample("t") is None  # gate restored

    def test_allow_stale_restores_gate_on_error(self):
        _, catalog = self._stale_catalog()
        with pytest.raises(RuntimeError):
            with catalog.allow_stale():
                raise RuntimeError("body died")
        assert not catalog.stale_allowed

    def test_sketch_build_breaker_opens_after_repeated_failures(self):
        db = Database()
        db.create_table("t", {"x": np.arange(100.0)})
        catalog = SynopsisCatalog(db)
        injector = FaultInjector(
            [FaultSpec(site="catalog.sketch_build", kind="error")]
        )
        builds = {"n": 0}

        def builder(table_obj, column):
            builds["n"] += 1
            return object()

        with inject(injector):
            for _ in range(3):
                with pytest.raises(InjectedFault):
                    catalog.ensure_sketch("t", "x", "hll", builder)
            # Breaker open: fails fast with the typed error, builder
            # never reached.
            with pytest.raises(SynopsisUnavailable):
                catalog.ensure_sketch("t", "x", "hll", builder)
        assert builds["n"] == 0
        assert catalog._sketch_breakers[("t", "x", "hll")].state == "open"


# ----------------------------------------------------------------------
# OLA / ripple deadline checkpoints (the graceful-stop satellite)
# ----------------------------------------------------------------------

def _tight_deadline():
    clock = ManualClock()
    dl = Deadline(1.0, clock=clock)
    clock.advance(2.0)
    return clock, dl


class TestOLADeadline:
    @pytest.mark.parametrize(
        "population",
        [
            np.random.default_rng(5).uniform(10.0, 20.0, 20_000),  # uniform
            np.random.default_rng(5).lognormal(3.0, 2.0, 20_000),  # skewed
        ],
        ids=["uniform", "skewed"],
    )
    def test_tight_deadline_returns_snapshot_not_raise(self, population):
        table = Table({"v": population})
        truth = float(population.sum())
        _, dl = _tight_deadline()
        ola = OnlineAggregator(table, "v", agg="sum", seed=1)
        snap = ola.run_to_target(0.01, batch_size=2000, deadline=dl)
        # The deadline expired before any batch: the answer is the first
        # batch's fixed-stop snapshot with its honest CI, never a raise.
        assert snap.rows_seen == 2000
        assert math.isfinite(snap.ci_low) and math.isfinite(snap.ci_high)
        assert snap.ci_high > snap.ci_low
        # Fixed-stop intervals are the valid kind (no peeking): at this
        # seeded prefix they cover the truth for both shapes.
        assert snap.covers(truth)

    def test_mid_run_expiry_stops_the_stream(self):
        rng = np.random.default_rng(9)
        table = Table({"v": rng.exponential(5.0, 50_000)})
        clock = ManualClock()
        dl = Deadline(3.0, clock=clock)
        ola = OnlineAggregator(table, "v", agg="sum", seed=2)
        seen = []
        for snap in ola.run(batch_size=1000, deadline=dl):
            seen.append(snap)
            clock.advance(1.0)  # each batch "costs" a second
        assert len(seen) == 3  # stopped at the deadline, not at the data
        assert seen[-1].fraction_seen < 1.0

    def test_ambient_scope_reaches_ola(self):
        rng = np.random.default_rng(9)
        table = Table({"v": rng.exponential(5.0, 10_000)})
        _, dl = _tight_deadline()
        ola = OnlineAggregator(table, "v", agg="sum", seed=2)
        with deadline_scope(dl):
            assert list(ola.run(batch_size=1000)) == []


class TestRippleDeadline:
    def _join(self, seed=3):
        rng = np.random.default_rng(seed)
        left = Table({"k": rng.integers(0, 50, 5000), "v": rng.exponential(2.0, 5000)})
        right = Table({"k": np.arange(50), "w": rng.uniform(0.5, 1.5, 50)})
        return RippleJoin(
            left, right, "k", "k", left_measure="v", right_measure="w",
            seed=seed,
        )

    def test_expired_deadline_yields_nothing(self):
        _, dl = _tight_deadline()
        assert list(self._join().run(batch=500, deadline=dl)) == []

    def test_mid_run_expiry_stops_at_batch_boundary(self):
        clock = ManualClock()
        dl = Deadline(2.0, clock=clock)
        join = self._join()
        snaps = []
        for snap in join.run(batch=500, deadline=dl):
            snaps.append(snap)
            clock.advance(1.0)
        assert len(snaps) == 2
        assert not join.is_exhausted
        # The last snapshot is still a usable estimate with a CI.
        assert math.isfinite(snaps[-1].ci_low)


# ----------------------------------------------------------------------
# The degradation ladder
# ----------------------------------------------------------------------

N_ROWS = 20_000


@pytest.fixture
def prices():
    return np.random.default_rng(0).lognormal(3.0, 1.0, N_ROWS)


@pytest.fixture
def sales_db(prices):
    db = Database()
    db.create_table("sales", {"price": prices})
    return db


def _add_stale_sample(db, prices, fraction=0.8, size=2000, seed=3):
    prefix = int(len(prices) * fraction)
    sample = srs_sample(
        Table({"price": prices[:prefix]}, name="sales"),
        size,
        np.random.default_rng(seed),
    )
    catalog = SynopsisCatalog.for_database(db)
    catalog.add_sample(
        SampleEntry(
            table="sales", sample=sample, kind="uniform",
            built_at_rows=prefix,
        )
    )
    return catalog


APPROX_SQL = "SELECT SUM(price) AS s FROM sales ERROR WITHIN 5% CONFIDENCE 95%"


class TestLadder:
    def test_exact_query_records_single_rung_provenance(self, sales_db):
        engine = ResilientEngine(sales_db)
        result = engine.sql("SELECT SUM(price) AS s FROM sales")
        assert [p["rung"] for p in result.provenance] == ["exact_no_guarantee"]
        assert not result.is_degraded

    def test_requested_rung_success_is_not_degraded(self, sales_db):
        engine = ResilientEngine(sales_db)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DegradedAnswer)
            result = engine.sql(APPROX_SQL, seed=1)
        assert result.provenance[-1]["rung"] == "requested"
        assert not result.is_degraded

    def test_stale_rung_widens_and_warns(self, sales_db, prices):
        _add_stale_sample(sales_db, prices)
        engine = ResilientEngine(sales_db)
        with pytest.warns(DegradedAnswer):
            result = engine.sql(APPROX_SQL, seed=1, technique="offline_sample")
        assert result.technique == "offline_sample_stale"
        assert result.is_degraded
        # staleness = (20000 - 16000) / 16000 = 0.25; the claimed spec
        # loosens to 0.05 * 1.25 + 0.25.
        assert result.diagnostics["staleness"] == pytest.approx(0.25)
        assert result.spec.relative_error == pytest.approx(
            0.05 * 1.25 + 0.25
        )
        cell = result.estimate("s")
        assert cell.covers(float(prices.sum()))
        rungs = [p["rung"] for p in result.provenance]
        assert rungs == ["requested", "stale_synopsis"]
        assert result.provenance[0]["outcome"] == "failed"

    def test_stale_rung_refuses_past_widening_cap(self, sales_db, prices):
        # built_at_rows=2000 over a 20000-row table: staleness 9.0 > 4.0.
        _add_stale_sample(sales_db, prices, fraction=0.1)
        engine = ResilientEngine(sales_db, warn_on_degrade=False)
        result = engine.sql(APPROX_SQL, seed=1, technique="offline_sample")
        steps = {p["rung"]: p for p in result.provenance}
        assert steps["stale_synopsis"]["outcome"] == "failed"
        assert "staleness" in steps["stale_synopsis"]["error"]
        assert result.provenance[-1]["outcome"] == "ok"

    def test_corrupted_sample_weights_are_rejected(self, sales_db, prices):
        catalog = _add_stale_sample(sales_db, prices)
        catalog.samples[0].sample.weights[:] = np.nan
        engine = ResilientEngine(sales_db, warn_on_degrade=False)
        result = engine.sql(APPROX_SQL, seed=1, technique="offline_sample")
        steps = {p["rung"]: p for p in result.provenance}
        assert steps["stale_synopsis"]["outcome"] == "failed"
        assert "SynopsisUnavailable" in steps["stale_synopsis"]["error"]

    def test_all_approx_rungs_faulted_falls_to_exact(self, sales_db, prices):
        engine = ResilientEngine(sales_db, warn_on_degrade=False)
        injector = FaultInjector(
            [
                FaultSpec(site=f"ladder.{rung}", kind="error")
                for rung in LADDER_RUNGS
                if rung != "exact_no_guarantee"
            ],
            seed=7,
        )
        with inject(injector):
            result = engine.sql(APPROX_SQL, seed=1)
        assert result.provenance[-1]["rung"] == "exact_no_guarantee"
        assert result.is_degraded
        assert result.scalar() == pytest.approx(float(prices.sum()))
        # Every failed rung left a complete record.
        assert len(result.provenance) == len(LADDER_RUNGS)
        assert all(
            p["outcome"] == "failed" for p in result.provenance[:-1]
        )

    def test_total_failure_is_a_typed_refusal_with_provenance(
        self, sales_db
    ):
        engine = ResilientEngine(sales_db, warn_on_degrade=False)
        injector = FaultInjector(
            [FaultSpec(site=f"ladder.{rung}", kind="error") for rung in LADDER_RUNGS],
            seed=7,
        )
        with inject(injector):
            with pytest.raises(QueryRefused) as exc_info:
                engine.sql(APPROX_SQL, seed=1)
        provenance = exc_info.value.provenance
        assert [p["rung"] for p in provenance] == list(LADDER_RUNGS)
        assert all(p["outcome"] == "failed" for p in provenance)

    def test_expired_deadline_serves_partial_ola_snapshot(
        self, sales_db, prices
    ):
        _, dl = _tight_deadline()
        engine = ResilientEngine(sales_db, warn_on_degrade=False)
        result = engine.sql(APPROX_SQL, seed=2, deadline=dl)
        assert result.technique == "partial_ola"
        assert result.is_degraded
        # Expensive rungs were skipped, not attempted, and said so.
        skipped = [p for p in result.provenance if p["outcome"] == "skipped"]
        assert {p["detail"] for p in skipped} == {"deadline expired"}
        # The honest-CI contract: the claimed spec is never tighter than
        # what the snapshot actually achieved.
        cell = result.estimate("s")
        achieved = cell.half_width / abs(cell.value)
        assert result.spec.relative_error >= achieved - 1e-9
        assert cell.covers(float(prices.sum()))

    def test_budget_exhaustion_is_recorded_and_refused(self, sales_db):
        engine = ResilientEngine(sales_db, warn_on_degrade=False)
        with pytest.raises(QueryRefused) as exc_info:
            engine.sql(
                "SELECT SUM(price) AS s FROM sales",
                budget=ResourceBudget(max_rows=10),
            )
        (step,) = exc_info.value.provenance
        assert step["rung"] == "exact_no_guarantee"
        assert step["detail"] == "budget"

    def test_breaker_skips_a_flapping_rung(self, sales_db):
        engine = ResilientEngine(
            sales_db, warn_on_degrade=False, breaker_threshold=2,
            breaker_cooldown=100,
        )
        injector = FaultInjector(
            [FaultSpec(site="ladder.requested", kind="error")], seed=7
        )
        with inject(injector):
            engine.sql(APPROX_SQL, seed=1)  # trips the breaker (2 attempts)
            arrivals_before = injector.fired_at("ladder.requested")
            result = engine.sql(APPROX_SQL, seed=1)
        # The second query found the breaker open: the requested rung
        # failed fast without re-running the faulted work.
        assert engine.breakers["requested"].state == "open"
        assert injector.fired_at("ladder.requested") == arrivals_before
        steps = {p["rung"]: p for p in result.provenance}
        assert steps["requested"]["detail"] == "synopsis unavailable"


# ----------------------------------------------------------------------
# Fault injector determinism
# ----------------------------------------------------------------------

class TestFaultInjector:
    def test_probabilistic_schedule_replays_exactly(self):
        def drive(injector):
            fired = []
            for _ in range(50):
                try:
                    injector.arrive("site.a")
                except InjectedFault:
                    fired.append(True)
                else:
                    fired.append(False)
            return fired

        spec = lambda: [FaultSpec(site="site.a", kind="error", probability=0.3)]
        assert drive(FaultInjector(spec(), seed=5)) == drive(
            FaultInjector(spec(), seed=5)
        )
        assert drive(FaultInjector(spec(), seed=5)) != drive(
            FaultInjector(spec(), seed=6)
        )

    def test_after_and_max_fires_window_the_outage(self):
        injector = FaultInjector(
            [FaultSpec(site="s", kind="error", after=2, max_fires=2)]
        )
        outcomes = []
        for _ in range(6):
            try:
                injector.arrive("s")
                outcomes.append("ok")
            except InjectedFault:
                outcomes.append("fault")
        assert outcomes == ["ok", "ok", "fault", "fault", "ok", "ok"]

    def test_slow_fault_advances_the_clock(self):
        clock = ManualClock()
        injector = FaultInjector(
            [FaultSpec(site="s", kind="slow", delay=3.0)], clock=clock
        )
        assert injector.arrive("s") is None
        assert clock.now() == pytest.approx(3.0)

    def test_no_injector_is_a_noop(self):
        from repro.resilience.faults import maybe_fault

        assert maybe_fault("anything") is None
