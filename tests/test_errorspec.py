"""Tests for error specs and the self-contained distribution quantiles.

The quantile implementations are validated against scipy (available in
the test environment, deliberately not a library dependency).
"""

import math

import pytest
import scipy.stats as st
from hypothesis import given, settings
from hypothesis import strategies as st_h

from repro import ErrorSpec, ErrorSpecError
from repro.core.errorspec import (
    chi2_cdf,
    chi2_ppf,
    normal_cdf,
    normal_ppf,
    student_t_cdf,
    student_t_ppf,
    z_value,
)


class TestErrorSpec:
    def test_valid(self):
        spec = ErrorSpec(0.05, 0.95)
        assert spec.failure_probability == pytest.approx(0.05)

    @pytest.mark.parametrize("err", [0.0, 1.0, -0.1, 2.0])
    def test_invalid_error(self, err):
        with pytest.raises(ErrorSpecError):
            ErrorSpec(err, 0.95)

    @pytest.mark.parametrize("conf", [0.0, 1.0, -0.5])
    def test_invalid_confidence(self, conf):
        with pytest.raises(ErrorSpecError):
            ErrorSpec(0.05, conf)

    def test_invalid_group_size(self):
        with pytest.raises(ErrorSpecError):
            ErrorSpec(0.05, 0.95, min_group_size=0)

    def test_split_confidence_union_bound(self):
        spec = ErrorSpec(0.05, 0.9)
        per = spec.split_confidence(5)
        assert per.failure_probability == pytest.approx(0.02)
        assert per.relative_error == spec.relative_error

    def test_split_error(self):
        spec = ErrorSpec(0.1, 0.95)
        assert spec.split_error(2).relative_error == pytest.approx(0.05)

    def test_split_validation(self):
        with pytest.raises(ErrorSpecError):
            ErrorSpec(0.05, 0.95).split_confidence(0)

    def test_str(self):
        assert "5%" in str(ErrorSpec(0.05, 0.95))


class TestNormalQuantiles:
    @pytest.mark.parametrize("p", [0.001, 0.01, 0.1, 0.25, 0.5, 0.9, 0.975, 0.999])
    def test_ppf_matches_scipy(self, p):
        assert normal_ppf(p) == pytest.approx(st.norm.ppf(p), abs=1e-7)

    @pytest.mark.parametrize("conf", [0.5, 0.9, 0.95, 0.99, 0.999])
    def test_z_value_two_sided(self, conf):
        assert z_value(conf) == pytest.approx(st.norm.ppf(0.5 + conf / 2), abs=1e-7)

    def test_z_value_common_constant(self):
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-4)

    def test_cdf_matches_scipy(self):
        for x in (-3.0, -1.0, 0.0, 0.5, 2.5):
            assert normal_cdf(x) == pytest.approx(st.norm.cdf(x), abs=1e-12)

    @given(st_h.floats(0.001, 0.999))
    @settings(max_examples=100, deadline=None)
    def test_ppf_cdf_round_trip(self, p):
        assert normal_cdf(normal_ppf(p)) == pytest.approx(p, abs=1e-8)

    def test_ppf_domain(self):
        with pytest.raises(ErrorSpecError):
            normal_ppf(0.0)


class TestStudentT:
    @pytest.mark.parametrize("df", [1, 2, 5, 10, 30, 100])
    @pytest.mark.parametrize("p", [0.9, 0.95, 0.975, 0.995])
    def test_ppf_matches_scipy(self, df, p):
        assert student_t_ppf(p, df) == pytest.approx(st.t.ppf(p, df), rel=1e-4, abs=1e-4)

    def test_large_df_converges_to_normal(self):
        assert student_t_ppf(0.975, 500) == pytest.approx(normal_ppf(0.975), abs=1e-3)

    def test_cdf_matches_scipy(self):
        for df in (3, 12):
            for t_val in (-2.0, 0.0, 1.5):
                assert student_t_cdf(t_val, df) == pytest.approx(
                    st.t.cdf(t_val, df), abs=1e-6
                )

    def test_invalid_df(self):
        with pytest.raises(ErrorSpecError):
            student_t_ppf(0.95, 0)


class TestChiSquared:
    @pytest.mark.parametrize("df", [1, 3, 10, 50])
    @pytest.mark.parametrize("p", [0.01, 0.05, 0.5, 0.95, 0.99])
    def test_ppf_matches_scipy(self, df, p):
        assert chi2_ppf(p, df) == pytest.approx(st.chi2.ppf(p, df), rel=1e-4, abs=1e-5)

    def test_cdf_matches_scipy(self):
        for df in (2, 7):
            for x in (0.5, 3.0, 12.0):
                assert chi2_cdf(x, df) == pytest.approx(st.chi2.cdf(x, df), abs=1e-8)

    def test_cdf_at_zero(self):
        assert chi2_cdf(0.0, 5) == 0.0

    def test_invalid_df(self):
        with pytest.raises(ErrorSpecError):
            chi2_ppf(0.5, -1)
