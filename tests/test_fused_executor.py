"""Differential suite for the fused zero-copy pipeline (``pytest -m fused``).

The fused executor (``Executor(fused=True)``, the default) must be
*bitwise indistinguishable* from the legacy materializing executor in
everything except wall-clock and allocations: result tables (values,
dtypes, column order), ``ExecutionStats``, RNG consumption under
``TABLESAMPLE``, and behaviour under deadlines, budgets, and shard
quorum degradation. Hypothesis fuzzes the query space; fixed tests pin
the allocation contract (zero intermediate Tables), the kernel cache,
the ``encode_groups`` integer fast path, and ``Table.take`` mask/index
normalization.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.core.exceptions import QueryRefused, SchemaError
from repro.engine.aggregates import AggregateSpec, encode_groups_arrays
from repro.engine.executor import Executor
from repro.engine.expressions import col
from repro.engine.kernel_cache import KernelCache
from repro.engine.plan import Filter, GroupByAggregate, Project, SampleClause, Scan
from repro.engine.table import Table, count_table_allocations
from repro.resilience import (
    Deadline,
    FaultInjector,
    FaultSpec,
    ManualClock,
    ResourceBudget,
    deadline_scope,
    inject,
    shard_site,
)
from repro.sharding import ScatterGatherExecutor, ShardedTable
from repro.sql.binder import bind_sql

pytestmark = pytest.mark.fused

ROWS = 3000


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(321)
    db = Database()
    db.create_table(
        "f",
        {
            "a": rng.integers(0, 40, ROWS),
            "b": rng.integers(-5, 6, ROWS),
            "v": np.round(rng.exponential(10.0, ROWS), 3),
            "w": np.round(rng.random(ROWS), 6),
            "tag": rng.choice(np.array(["x", "y", "z"], dtype=object), ROWS),
        },
        block_size=128,
    )
    return db


# --- bitwise comparison helpers ---------------------------------------

def assert_tables_identical(left: Table, right: Table) -> None:
    assert left.column_names == right.column_names
    assert left.num_rows == right.num_rows
    for name in left.column_names:
        la, ra = left[name], right[name]
        assert la.dtype == ra.dtype, name
        if la.dtype.kind == "f":
            assert np.array_equal(la, ra, equal_nan=True), name
        else:
            assert np.array_equal(la, ra), name


def stats_snapshot(stats) -> dict:
    return {
        "rows_scanned": stats.rows_scanned,
        "blocks_scanned": stats.blocks_scanned,
        "rows_sampled": stats.rows_sampled,
        "join_input_rows": stats.join_input_rows,
        "agg_input_rows": stats.agg_input_rows,
        "rows_output": stats.rows_output,
        "blocks_available": stats.blocks_available,
        "per_table": {
            name: (a.rows_scanned, a.blocks_scanned, a.rows_returned)
            for name, a in stats.per_table.items()
        },
        "cost": stats.simulated_cost().total,
    }


def run_both(db, sql, seed=0, optimize=False, deadline=None, budget=None):
    """Execute one bound plan under both modes; assert bit-identity."""
    plan = bind_sql(sql, db).plan
    fused_t, fused_s = db.execute(
        plan, seed=seed, optimize=optimize, deadline=deadline, budget=budget
    )
    mat_t, mat_s = db.execute(
        plan,
        seed=seed,
        optimize=optimize,
        deadline=deadline,
        budget=budget,
        fused=False,
    )
    assert_tables_identical(fused_t, mat_t)
    assert stats_snapshot(fused_s) == stats_snapshot(mat_s), sql
    return fused_t, fused_s


# --- fuzzed differential ----------------------------------------------

comparators = st.sampled_from(["<", "<=", ">", ">=", "=", "<>"])
numeric_cols = st.sampled_from(["a", "b", "v", "w"])
AGGS = st.sampled_from(
    ["SUM({v})", "COUNT(*)", "AVG({v})", "SUM({v} * {w})", "MIN({w})", "MAX({a})"]
)
GROUPS = st.sampled_from([(), ("b",), ("a",), ("tag",), ("a", "b"), ("b", "tag")])
SAMPLES = st.sampled_from(
    [
        "",
        " TABLESAMPLE BERNOULLI (40)",
        " TABLESAMPLE SYSTEM (50)",
    ]
)


@st.composite
def predicates(draw):
    parts = []
    for _ in range(draw(st.integers(1, 3))):
        c = draw(numeric_cols)
        op = draw(comparators)
        value = (
            draw(st.integers(-5, 40))
            if c in ("a", "b")
            else round(draw(st.floats(0, 30)), 3)
        )
        parts.append(f"{c} {op} {value}")
    return draw(st.sampled_from([" AND ", " OR "])).join(parts)


@st.composite
def queries(draw):
    templates = draw(st.lists(AGGS, min_size=1, max_size=3, unique=True))
    aggs = [t.format(v="v", w="w", a="a") for t in templates]
    groups = list(draw(GROUPS))
    select = ", ".join(
        [f"{g} AS g{i}" for i, g in enumerate(groups)]
        + [f"{a} AS c{i}" for i, a in enumerate(aggs)]
    )
    sql = f"SELECT {select} FROM f" + draw(SAMPLES)
    where = draw(st.one_of(st.none(), predicates()))
    if where is not None:
        sql += f" WHERE {where}"
    if groups:
        sql += " GROUP BY " + ", ".join(groups)
    return sql


class TestFusedDifferential:
    @given(queries(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_fuzzed_bit_identity(self, db, sql, seed):
        run_both(db, sql, seed=seed)

    @given(queries(), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_fuzzed_bit_identity_optimized(self, db, sql, seed):
        run_both(db, sql, seed=seed, optimize=True)

    def test_non_aggregate_chains(self, db):
        run_both(db, "SELECT a AS a, v * 2 AS v2 FROM f WHERE v > 5")
        run_both(db, "SELECT v AS v FROM f WHERE tag = 'x' ORDER BY v LIMIT 7")

    @pytest.mark.parametrize(
        "sample",
        [
            "TABLESAMPLE BERNOULLI (25)",
            "TABLESAMPLE SYSTEM (30)",
        ],
    )
    def test_sampled_scans_consume_rng_identically(self, db, sample):
        sql = f"SELECT SUM(v) AS s, COUNT(*) AS c FROM f {sample} WHERE a < 20"
        for seed in (0, 7, 991):
            run_both(db, sql, seed=seed)

    def test_identical_under_deadline_scope(self, db):
        sql = "SELECT b AS b, AVG(v) AS m FROM f WHERE w < 0.8 GROUP BY b"
        with deadline_scope(Deadline(60.0)):
            run_both(db, sql)

    def test_identical_under_budget(self, db):
        sql = "SELECT SUM(v * w) AS s FROM f WHERE a >= 3"
        run_both(db, sql, budget=ResourceBudget(max_rows=10 * ROWS))

    def test_expired_deadline_raises_in_both_modes(self, db):
        from repro.core.exceptions import DeadlineExceeded

        plan = bind_sql("SELECT SUM(v) AS s FROM f", db).plan
        for fused in (True, False):
            clock = ManualClock()
            deadline = Deadline(1.0, clock=clock)
            clock.advance(5.0)
            with pytest.raises(DeadlineExceeded):
                db.execute(plan, optimize=False, deadline=deadline, fused=fused)


# --- shard quorum degradation -----------------------------------------

class TestShardedZeroCopy:
    def _world(self):
        rng = np.random.default_rng(5)
        values = rng.lognormal(3.0, 1.0, 4000)
        group = rng.integers(0, 4, 4000)
        table = Table({"value": values, "g": group}, name="events")
        sharded = ShardedTable.from_table(table, 8)
        return sharded, values

    def test_exact_answer_matches_engine(self):
        sharded, values = self._world()
        executor = ScatterGatherExecutor(sharded, max_workers=1)
        result = executor.sql("SELECT SUM(value) AS s FROM events WHERE value > 20")
        truth = float(values[values > 20.0].sum())
        assert np.isclose(float(result.table["s"][0]), truth, rtol=1e-9)

    def test_degraded_quorum_still_honest_and_deterministic(self):
        sharded, values = self._world()
        truth = float(values[values > 20.0].sum())
        specs = [
            FaultSpec(site=shard_site(i, "exec"), kind="error", probability=1.0)
            for i in (1, 5)
        ]

        def degraded_run():
            executor = ScatterGatherExecutor(sharded, max_workers=1)
            with inject(FaultInjector(specs, seed=3)):
                return executor.sql(
                    "SELECT SUM(value) AS s FROM events WHERE value > 20",
                    seed=11,
                )

        first, second = degraded_run(), degraded_run()
        assert first.is_degraded and second.is_degraded
        cell = first.estimate("s", 0)
        assert cell.ci_low <= truth <= cell.ci_high
        # Bitwise-deterministic re-execution on the zero-copy shard views.
        assert float(first.table["s"][0]) == float(second.table["s"][0])
        assert first.ci_low["s"][0] == second.ci_low["s"][0]
        assert first.ci_high["s"][0] == second.ci_high["s"][0]
        missing = [
            p["shard"] for p in first.provenance
            if "shard" in p and p["status"] == "failed"
        ]
        assert missing == [1, 5]

    def test_quorum_failure_refuses_with_provenance(self):
        sharded, _ = self._world()
        specs = [
            FaultSpec(site=shard_site(i, "exec"), kind="error", probability=1.0)
            for i in range(8)
        ]
        executor = ScatterGatherExecutor(sharded, max_workers=1)
        with inject(FaultInjector(specs, seed=0)):
            with pytest.raises(QueryRefused) as exc:
                executor.sql("SELECT SUM(value) AS s FROM events")
        assert any(p.get("rung") for p in exc.value.provenance)


# --- allocation contract ----------------------------------------------

class TestZeroIntermediateTables:
    def _plan(self):
        scan = Scan(table_name="f")
        filt = Filter(child=scan, predicate=col("v") > 5.0)
        proj = Project(
            child=filt,
            items=((col("b"), "b"), (col("v") * col("w"), "vw")),
        )
        return GroupByAggregate(
            child=proj,
            keys=((col("b"), "b"),),
            aggregates=(AggregateSpec("sum", col("vw"), "s"),),
        )

    def test_fused_aggregate_chain_allocates_one_table(self, db):
        executor = Executor(db, kernel_cache=KernelCache())
        with count_table_allocations() as probe:
            result, _ = executor.execute(self._plan())
        # Exactly the result Table: no per-operator intermediates, no
        # scan materialization, no copies inside the aggregate fold.
        assert probe.count == 1
        assert result.num_rows > 0

    def test_materializing_reference_allocates_more(self, db):
        executor = Executor(db, fused=False)
        with count_table_allocations() as probe:
            executor.execute(self._plan())
        assert probe.count > 1

    def test_fused_filter_project_allocates_one_table(self, db):
        plan = Project(
            child=Filter(child=Scan(table_name="f"), predicate=col("a") < 10),
            items=((col("v"), "v"),),
        )
        executor = Executor(db, kernel_cache=KernelCache())
        with count_table_allocations() as probe:
            executor.execute(plan)
        assert probe.count == 1


# --- kernel cache ------------------------------------------------------

class TestKernelCache:
    def test_warm_execution_hits_cache(self, db):
        cache = KernelCache()
        plan = bind_sql(
            "SELECT b AS b, SUM(v) AS s FROM f WHERE w < 0.5 GROUP BY b", db
        ).plan
        cold, _ = Executor(db, kernel_cache=cache).execute(plan)
        assert (cache.stats.misses, cache.stats.hits) == (1, 0)
        warm, _ = Executor(db, kernel_cache=cache).execute(plan)
        assert (cache.stats.misses, cache.stats.hits) == (1, 1)
        assert_tables_identical(cold, warm)

    def test_seed_change_reuses_kernels(self, db):
        cache = KernelCache()
        plan = bind_sql(
            "SELECT SUM(v) AS s FROM f TABLESAMPLE BERNOULLI (30)", db
        ).plan
        Executor(db, seed=1, kernel_cache=cache).execute(plan)
        Executor(db, seed=2, kernel_cache=cache).execute(plan)
        # Kernels are seed-independent: signatures exclude the sample seed.
        assert (cache.stats.misses, cache.stats.hits) == (1, 1)

    def test_content_change_invalidates(self):
        db = Database()
        rng = np.random.default_rng(0)
        db.create_table("t", {"x": rng.random(500)}, block_size=64)
        cache = KernelCache()
        plan = bind_sql("SELECT SUM(x) AS s FROM t", db).plan
        Executor(db, kernel_cache=cache).execute(plan)
        db.replace_table("t", Table({"x": rng.random(500)}, name="t"))
        Executor(db, kernel_cache=cache).execute(plan)
        # New fingerprint, new key: stale kernels can never be returned.
        assert cache.stats.misses == 2

    def test_lru_eviction(self):
        cache = KernelCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.get_or_compile(key, lambda: key)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert "a" not in cache


# --- encode_groups integer fast path ----------------------------------

INT_DTYPES = [np.int8, np.int16, np.int32, np.int64, np.uint8, np.uint16]


def _generic_reference(key_arrays):
    """Force the generic path by widening every column to object dtype."""
    return encode_groups_arrays([a.astype(object) for a in key_arrays])


@st.composite
def int_key_sets(draw):
    n = draw(st.integers(1, 200))
    num_keys = draw(st.integers(2, 4))
    arrays = []
    for _ in range(num_keys):
        dtype = draw(st.sampled_from(INT_DTYPES))
        info = np.iinfo(dtype)
        lo = draw(st.integers(max(info.min, -1000), 0))
        hi = draw(st.integers(1, min(info.max, 1000)))
        seed = draw(st.integers(0, 2**31 - 1))
        arrays.append(
            np.random.default_rng(seed).integers(lo, hi + 1, n).astype(dtype)
        )
    return arrays


class TestEncodeGroupsFastPath:
    @given(int_key_sets())
    @settings(max_examples=80, deadline=None)
    def test_matches_generic_on_fuzzed_int_dtypes(self, key_arrays):
        ids_fast, cols_fast = encode_groups_arrays(key_arrays)
        ids_ref, cols_ref = _generic_reference(key_arrays)
        assert np.array_equal(ids_fast, ids_ref)
        assert len(cols_fast) == len(cols_ref)
        for fast, ref, source in zip(cols_fast, cols_ref, key_arrays):
            assert fast.dtype == source.dtype
            assert np.array_equal(fast.astype(object), ref)

    def test_overflow_span_falls_back_to_generic(self):
        # Per-column spans whose product overflows the int64 packing
        # budget: the fast path must bail, not wrap around.
        a = np.array([0, 2**40, 17, 0], dtype=np.int64)
        b = np.array([-(2**40), 5, 5, -(2**40)], dtype=np.int64)
        c = np.array([3, 2**21, 3, 3], dtype=np.int64)
        ids, cols = encode_groups_arrays([a, b, c])
        ids_ref, _ = _generic_reference([a, b, c])
        assert np.array_equal(ids, ids_ref)
        assert len(cols[0]) == 3  # rows 0 and 3 collide into one group

    def test_mixed_int_and_object_uses_generic(self):
        a = np.array([1, 1, 2], dtype=np.int64)
        s = np.array(["p", "q", "p"], dtype=object)
        ids, cols = encode_groups_arrays([a, s])
        assert np.array_equal(ids, [0, 1, 2])
        assert list(cols[1]) == ["p", "q", "p"]


# --- Table.take normalization -----------------------------------------

class TestTakeNormalization:
    def setup_method(self):
        self.t = Table({"x": np.arange(6, dtype=np.int64)})

    def test_boolean_mask_selects(self):
        mask = np.array([True, False, True, False, False, True])
        assert list(self.t.take(mask)["x"]) == [0, 2, 5]

    def test_wrong_length_mask_raises(self):
        with pytest.raises(SchemaError, match="length"):
            self.t.take(np.array([True, False]))

    def test_integer_indices_gather_and_repeat(self):
        out = self.t.take(np.array([5, 0, 0], dtype=np.int32))
        assert list(out["x"]) == [5, 0, 0]

    def test_empty_any_dtype_is_empty_selection(self):
        out = self.t.take(np.array([], dtype=np.float64))
        assert out.num_rows == 0

    def test_nonempty_float_indices_rejected(self):
        with pytest.raises(SchemaError):
            self.t.take(np.array([1.0, 2.0]))

    def test_2d_rejected(self):
        with pytest.raises(SchemaError):
            self.t.take(np.ones((2, 2), dtype=bool))
