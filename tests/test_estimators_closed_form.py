"""Tests for closed-form estimators: unbiasedness, coverage, planning."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro import ErrorSpec
from repro.estimators.closed_form import (
    Estimate,
    bernoulli_avg,
    bernoulli_count,
    bernoulli_sum,
    ratio_estimate,
    required_rate_for_sum,
    required_sample_size_for_mean,
    srs_mean,
    srs_proportion_count,
    srs_sum,
)


@pytest.fixture(scope="module")
def population():
    rng = np.random.default_rng(11)
    return rng.gamma(2.0, 50.0, 50_000)


class TestEstimateObject:
    def test_ci_symmetric(self):
        est = Estimate(100.0, 25.0, 1000)
        lo, hi = est.ci(0.95)
        assert hi - 100 == pytest.approx(100 - lo)
        assert hi - lo == pytest.approx(2 * 1.959964 * 5.0, rel=1e-3)

    def test_small_sample_uses_t(self):
        wide = Estimate(100.0, 25.0, 5).ci(0.95)
        narrow = Estimate(100.0, 25.0, 5000).ci(0.95)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_degenerate_sample(self):
        lo, hi = Estimate(1.0, 1.0, 1).ci(0.95)
        assert lo == -math.inf and hi == math.inf

    def test_satisfies_spec(self):
        tight = Estimate(100.0, 0.01, 10_000)
        assert tight.satisfies(ErrorSpec(0.05, 0.95))
        loose = Estimate(100.0, 10_000.0, 100)
        assert not loose.satisfies(ErrorSpec(0.05, 0.95))

    def test_relative_half_width_zero_value(self):
        assert Estimate(0.0, 1.0, 100).relative_half_width() == math.inf


class TestBernoulliEstimators:
    def test_sum_unbiased(self, population):
        rng = np.random.default_rng(0)
        rate = 0.02
        truth = population.sum()
        estimates = []
        for _ in range(60):
            mask = rng.random(len(population)) < rate
            estimates.append(bernoulli_sum(population[mask], rate).value)
        assert np.mean(estimates) == pytest.approx(truth, rel=0.02)

    def test_sum_coverage(self, population):
        rng = np.random.default_rng(1)
        rate = 0.02
        truth = population.sum()
        hits = 0
        trials = 120
        for _ in range(trials):
            mask = rng.random(len(population)) < rate
            lo, hi = bernoulli_sum(population[mask], rate).ci(0.95)
            hits += lo <= truth <= hi
        assert hits / trials >= 0.9  # allow MC slack below nominal 0.95

    def test_count(self):
        est = bernoulli_count(500, 0.05)
        assert est.value == pytest.approx(10_000)
        assert est.variance > 0

    def test_avg_close(self, population):
        rng = np.random.default_rng(2)
        mask = rng.random(len(population)) < 0.05
        est = bernoulli_avg(population[mask], 0.05)
        assert est.value == pytest.approx(population.mean(), rel=0.05)

    def test_avg_empty(self):
        est = bernoulli_avg(np.array([]), 0.1)
        assert math.isnan(est.value)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            bernoulli_sum(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            bernoulli_count(10, 1.5)


class TestSRSEstimators:
    def test_mean_with_fpc(self, population):
        rng = np.random.default_rng(3)
        idx = rng.choice(len(population), 5000, replace=False)
        est = srs_mean(population[idx], len(population))
        assert est.value == pytest.approx(population.mean(), rel=0.03)
        # FPC shrinks variance versus infinite population.
        inf_var = np.var(population[idx], ddof=1) / 5000
        assert est.variance < inf_var

    def test_full_census_zero_variance(self, population):
        est = srs_mean(population, len(population))
        assert est.variance == pytest.approx(0.0, abs=1e-9)

    def test_sum_scales_mean(self, population):
        rng = np.random.default_rng(4)
        idx = rng.choice(len(population), 1000, replace=False)
        mean = srs_mean(population[idx], len(population))
        total = srs_sum(population[idx], len(population))
        assert total.value == pytest.approx(mean.value * len(population))

    def test_proportion_count(self):
        est = srs_proportion_count(50, 1000, 100_000)
        assert est.value == pytest.approx(5000)
        lo, hi = est.ci(0.95)
        assert lo < 5000 < hi

    def test_empty_sample(self):
        assert math.isnan(srs_mean(np.array([]), 100).value)


class TestRatioEstimator:
    def test_matches_mean_when_denominator_ones(self, population):
        rng = np.random.default_rng(5)
        sample = population[rng.choice(len(population), 2000, replace=False)]
        est = ratio_estimate(sample, np.ones(len(sample)))
        assert est.value == pytest.approx(sample.mean())

    def test_filtered_average(self, population):
        rng = np.random.default_rng(6)
        sample = population[rng.choice(len(population), 5000, replace=False)]
        match = sample > 100
        est = ratio_estimate(np.where(match, sample, 0.0), match.astype(float))
        assert est.value == pytest.approx(sample[match].mean(), rel=1e-9)

    def test_zero_denominator(self):
        est = ratio_estimate(np.array([1.0]), np.array([0.0]))
        assert math.isnan(est.value)


class TestPlanning:
    def test_required_size_grows_with_precision(self):
        loose = required_sample_size_for_mean(1.0, ErrorSpec(0.1, 0.95))
        tight = required_sample_size_for_mean(1.0, ErrorSpec(0.01, 0.95))
        assert tight > 50 * loose

    def test_required_size_fpc_caps_at_population(self):
        n = required_sample_size_for_mean(
            5.0, ErrorSpec(0.001, 0.99), population_size=1000
        )
        assert n <= 1000

    def test_required_size_delivers_error(self, population):
        spec = ErrorSpec(0.05, 0.95)
        cv = population.std() / population.mean()
        n = required_sample_size_for_mean(cv, spec, len(population))
        rng = np.random.default_rng(8)
        hits = 0
        for _ in range(100):
            idx = rng.choice(len(population), n, replace=False)
            est = srs_mean(population[idx], len(population))
            hits += abs(est.value - population.mean()) <= spec.relative_error * population.mean()
        assert hits >= 90

    def test_required_rate_for_sum_monotone(self, population):
        rng = np.random.default_rng(9)
        pilot = population[rng.random(len(population)) < 0.01]
        tight = required_rate_for_sum(pilot, 0.01, ErrorSpec(0.01, 0.95))
        loose = required_rate_for_sum(pilot, 0.01, ErrorSpec(0.10, 0.95))
        assert tight > loose

    @given(hst.floats(0.01, 0.3), hst.floats(0.5, 0.99))
    @settings(max_examples=30, deadline=None)
    def test_required_size_positive(self, err, conf):
        assert required_sample_size_for_mean(2.0, ErrorSpec(err, conf)) >= 1
