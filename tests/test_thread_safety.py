"""Thread-safety audit: shared process-wide state under a 16-thread hammer.

Counters are the easiest thing in the world to corrupt quietly — a lost
`+= 1` under a race produces no crash, just a wrong number months later.
These tests hammer every piece of process-shared mutable state the
serving layer leans on (metrics registry, kernel cache, synopsis cache,
circuit breakers, token buckets, the Database catalog) from 16 threads
and assert *exact* totals, not approximate ones: with correct locking
the counts are deterministic regardless of interleaving.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Database
from repro.engine.kernel_cache import KernelCache
from repro.obs.metrics import MetricsRegistry
from repro.resilience.deadline import ManualClock
from repro.resilience.retry import CircuitBreaker
from repro.serving import TokenBucket
from repro.storage.synopsis_cache import SynopsisCache

pytestmark = pytest.mark.stress

N_THREADS = 16
N_OPS = 1_000


def _hammer(worker, n_threads: int = N_THREADS):
    """Run ``worker(thread_index)`` in N threads behind a start barrier."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def run(i: int) -> None:
        barrier.wait()
        try:
            worker(i)
        except BaseException as exc:  # noqa: BLE001 — surface in the test
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads), "hammer thread hung"
    if errors:
        raise errors[0]


def test_metrics_registry_exact_totals():
    registry = MetricsRegistry()

    def worker(i: int) -> None:
        for k in range(N_OPS):
            registry.inc("hammer_total", worker=str(i % 4))
            registry.observe("hammer_seconds", float(k))
            registry.set_gauge("hammer_gauge", float(k))

    _hammer(worker)
    assert registry.counter_total("hammer_total") == N_THREADS * N_OPS
    snap = registry.snapshot(include_caches=False)
    hist = snap["histograms"]["hammer_seconds"]
    assert hist["count"] == N_THREADS * N_OPS
    assert hist["sum"] == pytest.approx(
        N_THREADS * sum(range(N_OPS))
    ), "histogram sum lost observations under the race"


def test_kernel_cache_compiles_once_and_counts_exactly():
    cache = KernelCache(max_entries=64)
    compiles = []
    compile_lock = threading.Lock()

    def compiler():
        with compile_lock:
            compiles.append(1)
        return object()

    def worker(i: int) -> None:
        for k in range(N_OPS):
            cache.get_or_compile(("sig", k % 8), compiler)

    _hammer(worker)
    lookups = N_THREADS * N_OPS
    assert cache.stats.hits + cache.stats.misses == lookups
    # Every miss corresponds to exactly one compile — no torn double
    # compilation escaping the lock, no lost counter updates.
    assert cache.stats.misses == len(compiles)
    assert len(cache) == 8


def test_synopsis_cache_exact_counts_under_hammer():
    from repro.engine.table import Table

    cache = SynopsisCache(max_bytes=1 << 24)
    tables = [
        Table({"x": np.full(32, float(t))}, name=f"t{t}") for t in range(8)
    ]
    builds = []
    build_lock = threading.Lock()

    def build():
        with build_lock:
            builds.append(1)
        return np.zeros(16)

    def worker(i: int) -> None:
        for k in range(N_OPS):
            cache.get_or_build(tables[k % 8], "sample", build)

    _hammer(worker)
    lookups = N_THREADS * N_OPS
    assert cache.stats.hits + cache.stats.misses == lookups
    # Builders run outside the lock by design (racing builders both
    # build, last write wins) — but every miss runs exactly one build,
    # so the counts still tie out exactly.
    assert cache.stats.misses == len(builds)
    assert len(cache) == 8


def test_circuit_breaker_counts_exactly():
    breaker = CircuitBreaker(failure_threshold=10**9, cooldown=1)

    def worker(i: int) -> None:
        for _ in range(N_OPS):
            breaker.record_failure()
            breaker.record_success()

    _hammer(worker)
    assert breaker.total_failures == N_THREADS * N_OPS
    assert breaker.total_successes == N_THREADS * N_OPS
    assert breaker.state == "closed"


def test_token_bucket_never_overspends():
    clock = ManualClock()
    capacity = float(N_THREADS * N_OPS)
    bucket = TokenBucket(capacity=capacity, refill_rate=0.0, clock=clock)
    granted = []
    lock = threading.Lock()

    def worker(i: int) -> None:
        ok = 0
        for _ in range(N_OPS * 2):  # 2x demand vs supply
            if bucket.try_charge(1.0):
                ok += 1
        with lock:
            granted.append(ok)

    _hammer(worker)
    # All-or-nothing charges: exactly `capacity` grants, never one more.
    assert sum(granted) == int(capacity)
    assert bucket.available() == pytest.approx(0.0)


def test_database_catalog_safe_under_concurrent_stats_and_append():
    rng = np.random.default_rng(0)
    db = Database()
    for t in range(4):
        db.create_table(
            f"t{t}", {"x": rng.normal(size=2_000)}, block_size=256
        )

    def worker(i: int) -> None:
        for k in range(50):
            name = f"t{(i + k) % 4}"
            stats = db.stats(name)
            assert stats.num_rows > 0
            if i == 0 and k % 10 == 0:
                db.append_rows(name, {"x": np.ones(10)})
            db.table(name)

    _hammer(worker)
    for t in range(4):
        # Stats recompute on demand and describe the final content.
        assert db.stats(f"t{t}").num_rows == db.table(f"t{t}").num_rows
