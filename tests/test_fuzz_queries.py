"""Property-based query fuzzing.

Hypothesis generates random (but valid) queries over a fixed schema; for
each one we check the invariants that hold regardless of query content:

* the optimized plan returns exactly what the unoptimized plan returns;
* exact re-execution is deterministic;
* HT estimation from a Bernoulli sample is within a generous statistical
  envelope of the exact answer (catching scaling mistakes, which show up
  as 2x-style errors far outside any sampling noise).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.engine.optimizer import optimize_plan
from repro.sql.binder import bind_sql

ROWS = 4000


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(99)
    db = Database()
    db.create_table(
        "f",
        {
            "a": rng.integers(0, 50, ROWS),
            "b": rng.integers(0, 8, ROWS),
            "v": np.round(rng.exponential(10.0, ROWS), 3),
            "w": np.round(rng.random(ROWS), 6),
        },
        block_size=128,
    )
    db.create_table(
        "d",
        {"k": np.arange(8, dtype=np.int64), "tag": np.arange(8) % 3},
    )
    return db


# --- query text generator ---------------------------------------------

comparators = st.sampled_from(["<", "<=", ">", ">=", "=", "<>"])
columns = st.sampled_from(["a", "b", "v", "w"])
#: agg templates over fact columns; formatted with qualified names so the
#: same pool serves both single-table and join queries
AGG_TEMPLATES = st.sampled_from(
    ["SUM({v})", "COUNT(*)", "AVG({v})", "SUM({v} * {w})", "MIN({w})", "MAX({a})"]
)
#: fact-side GROUP BY column sets (empty = plain aggregate)
GROUP_SETS = st.sampled_from([(), ("b",), ("a",), ("a", "b"), ("b", "a")])


@st.composite
def predicates(draw, qualify):
    parts = []
    for _ in range(draw(st.integers(1, 3))):
        col = draw(columns)
        op = draw(comparators)
        if col in ("a", "b"):
            value = draw(st.integers(0, 50))
        else:
            value = round(draw(st.floats(0, 30)), 3)
        parts.append(f"{qualify(col)} {op} {value}")
    joiner = draw(st.sampled_from([" AND ", " OR "]))
    return joiner.join(parts)


@st.composite
def queries(draw):
    """Aggregates over ``f``, optionally joined to ``d``, with 0-3 GROUP BY
    columns drawn from both sides of the join and 0-3 WHERE conjuncts."""
    join = draw(st.booleans())
    qualify = (lambda c: f"f.{c}") if join else (lambda c: c)
    templates = draw(st.lists(AGG_TEMPLATES, min_size=1, max_size=3, unique=True))
    agg_list = [
        t.format(v=qualify("v"), w=qualify("w"), a=qualify("a")) for t in templates
    ]
    group_cols = [qualify(c) for c in draw(GROUP_SETS)]
    if join and draw(st.booleans()):
        # dimension-side grouping exercises join-then-group plans
        group_cols.append("d.tag")
    select = ", ".join(
        [f"{g} AS g{i}" for i, g in enumerate(group_cols)]
        + [f"{a} AS c{i}" for i, a in enumerate(agg_list)]
    )
    sql = f"SELECT {select} FROM f"
    if join:
        sql += " JOIN d ON f.b = d.k"
    where = draw(st.one_of(st.none(), predicates(qualify=qualify)))
    if where is not None:
        sql += f" WHERE {where}"
    if group_cols:
        sql += " GROUP BY " + ", ".join(group_cols)
    return sql


def rows_sorted(table):
    pylist = table.to_pylist()
    return sorted(
        (tuple(sorted(row.items())) for row in pylist),
        key=lambda r: str(r),
    )


def approx_equal_rows(a, b):
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        for (ka, va), (kb, vb) in zip(ra, rb):
            if ka != kb:
                return False
            if isinstance(va, float) and isinstance(vb, float):
                if np.isnan(va) and np.isnan(vb):
                    continue
                if not np.isclose(va, vb, rtol=1e-9, atol=1e-9, equal_nan=True):
                    return False
            elif va != vb:
                return False
    return True


@pytest.mark.slow
class TestQueryFuzz:
    @given(queries())
    @settings(max_examples=60, deadline=None)
    def test_optimizer_preserves_semantics(self, db, sql):
        bound = bind_sql(sql, db)
        raw, _ = db.execute(bound.plan, optimize=False)
        opt, _ = db.execute(optimize_plan(bound.plan, db), optimize=False)
        assert approx_equal_rows(rows_sorted(raw), rows_sorted(opt)), sql

    @given(queries())
    @settings(max_examples=30, deadline=None)
    def test_exact_execution_deterministic(self, db, sql):
        a = db.sql(sql)
        b = db.sql(sql)
        assert approx_equal_rows(rows_sorted(a.table), rows_sorted(b.table)), sql

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_sampled_sum_within_envelope(self, db, seed):
        """A 30% Bernoulli sample's HT SUM must land within a generous
        envelope — catches inverse-probability scaling bugs."""
        exact = db.sql("SELECT SUM(v) AS s FROM f").scalar()
        res = db.sql(
            "SELECT SUM(v) AS s FROM f TABLESAMPLE BERNOULLI (30)",
            seed=seed,
        )
        scaled = res.scalar() / 0.30
        assert abs(scaled - exact) / exact < 0.30
