"""The unified QueryOptions front-door contract.

Every ``sql()`` entry point — :meth:`AQPEngine.sql`,
:meth:`Database.sql`, :meth:`ResilientEngine.sql`,
:meth:`ScatterGatherExecutor.sql`, :meth:`ServingFrontend.sql` /
``submit`` — accepts the same ``options=QueryOptions(...)`` object,
keeps the old per-entry keywords alive behind a DeprecationWarning shim,
and rejects unknown keywords with TypeError at the call site. Results
from every door expose the common envelope (:data:`ENVELOPE_KEYS`).
"""

from __future__ import annotations

import inspect
import warnings

import numpy as np
import pytest

from repro import Database, ErrorSpec, QueryOptions
from repro.core.options import (
    QUERY_OPTION_FIELDS,
    maybe_trace,
    resolve_options,
)
from repro.core.result import ENVELOPE_KEYS
from repro.core.session import AQPEngine
from repro.obs.explain import run_explain_analyze
from repro.resilience.ladder import ResilientEngine
from repro.serving import ServingFrontend
from repro.sharding import ScatterGatherExecutor, ShardedTable

ROWS = 4_000
SQL = "SELECT SUM(v) AS s FROM events"
SPEC_SQL = SQL + " ERROR WITHIN 10% CONFIDENCE 95%"


@pytest.fixture(scope="module")
def db() -> Database:
    rng = np.random.default_rng(7)
    database = Database()
    database.create_table(
        "events",
        {
            "v": rng.exponential(10.0, ROWS),
            "grp": rng.integers(0, 4, ROWS),
        },
    )
    return database


def _entry_points(db):
    """(name, bound sql callable) for all five front doors."""
    sharded = ShardedTable.from_table(db.table("events"), 4)
    frontend = ServingFrontend(db, workers=1, seed=0)
    return [
        ("Database.sql", db.sql),
        ("AQPEngine.sql", AQPEngine(db).sql),
        ("ResilientEngine.sql", ResilientEngine(db, warn_on_degrade=False).sql),
        ("ScatterGatherExecutor.sql", ScatterGatherExecutor(sharded).sql),
        ("ServingFrontend.sql", frontend.sql),
        ("ServingFrontend.submit", frontend.submit),
    ], frontend


# ----------------------------------------------------------------------
# Signature parity
# ----------------------------------------------------------------------

class TestSignatureParity:
    def test_every_entry_point_accepts_options_and_kwargs(self, db):
        entries, frontend = _entry_points(db)
        try:
            for name, fn in entries:
                sig = inspect.signature(fn)
                params = sig.parameters
                assert "query" in params, name
                assert "options" in params, name
                assert params["options"].default is None, name
                kinds = {p.kind for p in params.values()}
                assert inspect.Parameter.VAR_KEYWORD in kinds, (
                    f"{name} lost its **kwargs back-compat shim"
                )
        finally:
            frontend.close()

    def test_options_fields_are_the_canonical_set(self):
        assert QUERY_OPTION_FIELDS == (
            "seed",
            "spec",
            "technique",
            "pilot_rate",
            "deadline",
            "budget",
            "entry_rung",
            "tenant",
            "priority",
            "trace",
        )

    def test_every_entry_point_rejects_unknown_kwargs(self, db):
        entries, frontend = _entry_points(db)
        try:
            for name, fn in entries:
                with pytest.raises(TypeError, match="unexpected query option"):
                    fn(SQL, not_an_option=1)
        finally:
            frontend.close()


# ----------------------------------------------------------------------
# resolve_options semantics
# ----------------------------------------------------------------------

class TestResolveOptions:
    def test_defaults_without_anything(self):
        assert resolve_options() == QueryOptions()

    def test_options_pass_through_unchanged(self):
        opts = QueryOptions(seed=3, tenant="t1")
        assert resolve_options(opts) is opts

    def test_legacy_kwargs_override_options_and_warn(self):
        opts = QueryOptions(seed=3, pilot_rate=0.05)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            merged = resolve_options(opts, {"seed": 9})
        assert merged.seed == 9
        assert merged.pilot_rate == 0.05  # untouched fields survive

    def test_unknown_kwarg_raises_listing_valid_fields(self):
        with pytest.raises(TypeError) as exc:
            resolve_options(None, {"sede": 1}, entry="Database.sql()")
        assert "sede" in str(exc.value)
        assert "seed" in str(exc.value)  # the valid list is in the message

    def test_non_queryoptions_object_raises(self):
        with pytest.raises(TypeError, match="QueryOptions"):
            resolve_options({"seed": 1})

    def test_replace_returns_new_frozen_instance(self):
        opts = QueryOptions(seed=1)
        other = opts.replace(seed=2)
        assert opts.seed == 1 and other.seed == 2
        with pytest.raises(Exception):
            opts.seed = 3  # frozen

    def test_maybe_trace_yields_fresh_tracer_on_demand(self):
        with maybe_trace(QueryOptions()) as tracer:
            assert tracer is None
        with maybe_trace(QueryOptions(trace=True)) as tracer:
            assert tracer is not None


# ----------------------------------------------------------------------
# Deprecation shim round-trips: legacy kwargs == options object
# ----------------------------------------------------------------------

class TestDeprecationShims:
    def test_database_sql_seed_shim(self, db):
        with pytest.warns(DeprecationWarning):
            legacy = db.sql(SPEC_SQL, seed=11)
        modern = db.sql(SPEC_SQL, options=QueryOptions(seed=11))
        assert legacy.values() == modern.values()

    def test_ladder_spec_shim(self, db):
        engine = ResilientEngine(db, warn_on_degrade=False)
        spec = ErrorSpec(relative_error=0.10, confidence=0.95)
        with pytest.warns(DeprecationWarning):
            legacy = engine.sql(SQL, spec=spec, seed=5)
        modern = engine.sql(SQL, options=QueryOptions(spec=spec, seed=5))
        assert legacy.values() == modern.values()

    def test_sharded_executor_shim(self, db):
        sharded = ShardedTable.from_table(db.table("events"), 4)
        executor = ScatterGatherExecutor(sharded)
        with pytest.warns(DeprecationWarning):
            legacy = executor.sql(SQL, seed=3)
        modern = executor.sql(SQL, options=QueryOptions(seed=3))
        assert legacy.values() == modern.values()

    def test_frontend_submit_shim(self, db):
        frontend = ServingFrontend(db, workers=1, seed=0)
        try:
            with pytest.warns(DeprecationWarning):
                legacy = frontend.sql(SQL, seed=2, timeout=60.0)
            modern = frontend.sql(
                SQL, options=QueryOptions(seed=2), timeout=60.0
            )
            assert legacy.values() == modern.values()
        finally:
            frontend.close()


# ----------------------------------------------------------------------
# The old serving-frontend hole: typo'd kwargs must fail at submit time
# ----------------------------------------------------------------------

class TestFrontendSubmitTime:
    def test_unknown_kwarg_raises_before_enqueue(self, db):
        frontend = ServingFrontend(db, workers=1, seed=0)
        try:
            with pytest.raises(TypeError, match="not_an_option"):
                frontend.submit(SQL, not_an_option=True)
            # Nothing was enqueued: the frontend still serves normally.
            result = frontend.sql(SQL, timeout=60.0)
            assert result.value("s") > 0
        finally:
            frontend.close()


# ----------------------------------------------------------------------
# Unified result envelope
# ----------------------------------------------------------------------

class TestResultEnvelope:
    def _assert_envelope(self, result):
        doc = result.to_dict()
        assert tuple(doc.keys()) == ENVELOPE_KEYS
        assert isinstance(doc["values"], dict)
        assert isinstance(doc["ci"], dict)
        assert isinstance(doc["provenance"], list)
        assert isinstance(doc["stats"], dict)
        # value()/ci() agree with the dict view
        assert result.value("s") == pytest.approx(doc["values"]["s"][0])
        low, high = result.ci("s", 0)
        assert low <= result.value("s") <= high

    def test_exact_result_envelope(self, db):
        result = db.sql(SQL)
        self._assert_envelope(result)
        assert result.to_dict()["kind"] == "exact"
        low, high = result.ci("s", 0)
        assert low == high  # zero-width CI: no sampling error

    def test_approximate_result_envelope(self, db):
        result = db.sql(SPEC_SQL, options=QueryOptions(seed=1))
        self._assert_envelope(result)

    def test_ladder_result_envelope(self, db):
        engine = ResilientEngine(db, warn_on_degrade=False)
        result = engine.sql(SPEC_SQL, options=QueryOptions(seed=1))
        self._assert_envelope(result)

    def test_explain_result_envelope(self, db):
        result = run_explain_analyze(
            db, SPEC_SQL, options=QueryOptions(seed=1)
        )
        self._assert_envelope(result)
        assert result.to_dict()["kind"] in ("exact", "approximate")

    def test_envelopes_share_one_key_set_across_doors(self, db):
        engine = ResilientEngine(db, warn_on_degrade=False)
        sharded = ShardedTable.from_table(db.table("events"), 4)
        executor = ScatterGatherExecutor(sharded)
        docs = [
            db.sql(SQL).to_dict(),
            db.sql(SPEC_SQL, options=QueryOptions(seed=1)).to_dict(),
            engine.sql(SPEC_SQL, options=QueryOptions(seed=1)).to_dict(),
            executor.sql(SQL, options=QueryOptions(seed=1)).to_dict(),
            run_explain_analyze(
                db, SQL, options=QueryOptions(seed=1)
            ).to_dict(),
        ]
        key_sets = {tuple(doc.keys()) for doc in docs}
        assert key_sets == {ENVELOPE_KEYS}
