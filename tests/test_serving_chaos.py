"""Concurrent chaos sweeps of the serving front-end.

The serving invariants, asserted under worker-thread concurrency and a
seeded fault schedule (the same CHAOS_SEED matrix the single-threaded
chaos suite sweeps):

1. **no deadlock** — every submitted query resolves within a global
   timeout, whatever the injector does;
2. **exactly one outcome** — each query ends as an answer (with CI and
   ladder provenance), a typed :class:`QueryRefused` (with provenance),
   or a typed :class:`QueryRejected`; never an untyped error, never
   more than one;
3. **schedule-free determinism** — with per-query fault keying
   (:func:`query_scope` + splitmix derivation), the same seed produces
   the same fault decisions and the same answers whether the queue is
   drained by 1 worker or 4.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Database
from repro.core.exceptions import QueryRefused, QueryRejected
from repro.resilience.faults import (
    FaultInjector,
    FaultSpec,
    inject,
    query_scope,
    splitmix64,
)
from repro.resilience.ladder import ResilientEngine
from repro.resilience.retry import RetryPolicy
from repro.serving import OverloadController, ServingFrontend

pytestmark = [pytest.mark.chaos, pytest.mark.stress]

#: same seed matrix the single-threaded chaos suite sweeps
CHAOS_SEEDS = (0, 1, 2, 3)

QUERIES = [
    "SELECT SUM(v) AS s FROM events ERROR WITHIN 20% CONFIDENCE 95%",
    "SELECT COUNT(*) AS c FROM events WHERE v > 2 "
    "ERROR WITHIN 20% CONFIDENCE 95%",
    "SELECT SUM(v) AS s, COUNT(*) AS c FROM events WHERE v > 5",
    "SELECT AVG(v) AS a FROM events ERROR WITHIN 25% CONFIDENCE 90%",
]


@pytest.fixture(scope="module")
def chaos_db():
    rng = np.random.default_rng(23)
    db = Database()
    db.create_table(
        "events",
        {
            "v": rng.exponential(10.0, 30_000),
            "k": rng.integers(0, 10, 30_000),
        },
        block_size=1024,
    )
    return db


def _chaos_injector(seed: int) -> FaultInjector:
    """Probabilistic faults at every ladder rung, keyed by the seed."""
    return FaultInjector(
        [
            FaultSpec("ladder.requested", kind="error", probability=0.6),
            FaultSpec("sample.metadata", kind="corrupt", probability=0.5),
            FaultSpec(
                "ladder.cheaper_technique", kind="error", probability=0.5
            ),
            FaultSpec("ladder.partial_ola", kind="error", probability=0.5),
            FaultSpec(
                "ladder.exact_no_guarantee", kind="error", probability=0.3
            ),
        ],
        seed=seed,
    )


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_concurrent_chaos_exactly_one_outcome(chaos_db, seed):
    """4 workers x faulty ladder: nothing hangs, everything ends typed."""
    n_queries = 24
    fe = ServingFrontend(
        chaos_db,
        workers=4,
        max_queue=8,  # small on purpose: overload rejections are in scope
        seed=seed,
    )
    tickets, rejected = [], []
    lock = threading.Lock()

    def client(client_id: int) -> None:
        for i in range(n_queries // 4):
            query = QUERIES[(client_id + i) % len(QUERIES)]
            try:
                t = fe.submit(
                    query,
                    tenant=f"c{client_id}",
                    priority="interactive" if i % 2 else "batch",
                    seed=seed * 100 + i,
                )
                with lock:
                    tickets.append(t)
            except QueryRejected as exc:
                with lock:
                    rejected.append(exc)

    try:
        with inject(_chaos_injector(seed)):
            threads = [
                threading.Thread(target=client, args=(c,)) for c in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert fe.drain(timeout=120.0), "serving queue failed to drain"

        outcomes = {"ok": 0, "refused": 0, "rejected": 0}
        for ticket in tickets:
            assert ticket.wait(timeout=60.0), (
                f"query {ticket.query_id} never resolved (deadlock?)"
            )
            err = ticket.exception()
            if err is None:
                result = ticket.result()
                assert result.provenance, "answers carry ladder provenance"
                assert any(
                    p["outcome"] == "ok" for p in result.provenance
                )
                outcomes["ok"] += 1
            elif isinstance(err, QueryRejected):
                outcomes["rejected"] += 1
            elif isinstance(err, QueryRefused):
                assert err.provenance, "refusals carry full provenance"
                assert all(
                    p["outcome"] in ("failed", "skipped")
                    for p in err.provenance
                )
                outcomes["refused"] += 1
            else:
                pytest.fail(
                    f"untyped error escaped the ladder: {type(err).__name__}: {err}"
                )
        total = sum(outcomes.values()) + len(rejected)
        assert total == n_queries, (
            f"every query must end in exactly one outcome "
            f"({outcomes}, +{len(rejected)} rejected at submit, "
            f"of {n_queries})"
        )
    finally:
        fe.close()


def _run_schedule(db, seed: int, workers: int):
    """One full workload under the chaos seed; returns (faults, answers)."""
    injector = _chaos_injector(seed)
    engine = ResilientEngine(
        db,
        # Breakers count *globally* across queries, so their trips depend
        # on the drain order; disarm them to isolate the per-query RNG
        # claim (breaker determinism is pinned by the sequential suite).
        breaker_threshold=10**6,
        warn_on_degrade=False,
    )
    fe = ServingFrontend(
        engine=engine,
        workers=workers,
        max_queue=64,  # never overload: admission must not differ
        controller=OverloadController(64, max_level=0),
        seed=seed,
    )
    answers = {}
    try:
        with inject(injector):
            tickets = {}
            for i, query in enumerate(QUERIES * 3):
                qid = splitmix64(seed, i)
                tickets[qid] = fe.submit(query, seed=i, query_id=qid)
            assert fe.drain(timeout=120.0)
        for qid, ticket in tickets.items():
            err = ticket.exception(timeout=60.0)
            if err is None:
                result = ticket.result()
                answers[qid] = (
                    "ok",
                    {
                        c: np.asarray(result.table[c]).tolist()
                        for c in result.table.column_names
                    },
                    [p["rung"] + ":" + p["outcome"] for p in result.provenance],
                )
            else:
                answers[qid] = ("error", type(err).__name__, str(err))
    finally:
        fe.close()
    return set(injector.fired_by_query), answers


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_same_seed_two_schedules_same_faults_and_answers(chaos_db, seed):
    """1-worker and 4-worker drains of the same workload are identical.

    Fault decisions are pure functions of (seed, site, query_id,
    arrival-within-query), so the thread schedule cannot reorder RNG
    draws; the fired-fault *set* and every per-query answer (values and
    provenance) must match exactly.
    """
    faults_seq, answers_seq = _run_schedule(chaos_db, seed, workers=1)
    faults_par, answers_par = _run_schedule(chaos_db, seed, workers=4)
    assert faults_seq == faults_par, (
        "fault schedule depends on the thread interleaving"
    )
    assert answers_seq.keys() == answers_par.keys()
    for qid in answers_seq:
        assert answers_seq[qid] == answers_par[qid], (
            f"query {qid} diverged between schedules"
        )


def test_retry_jitter_is_schedule_free():
    """Backoff draws are pure functions of (seed, site, query, attempt)."""
    policy = RetryPolicy(max_attempts=3, jitter=0.5, seed=42)
    with query_scope(7):
        a0 = policy.backoff(0, site="ladder.requested")
        a1 = policy.backoff(1, site="ladder.requested")
    with query_scope(8):
        b0 = policy.backoff(0, site="ladder.requested")
    # Draw order reversed, different interleaving: same values.
    with query_scope(8):
        b0_again = policy.backoff(0, site="ladder.requested")
    with query_scope(7):
        a1_again = policy.backoff(1, site="ladder.requested")
        a0_again = policy.backoff(0, site="ladder.requested")
    assert (a0, a1, b0) == (a0_again, a1_again, b0_again)
    assert a0 != b0, "different queries draw different jitter"
    # A second policy with the same seed agrees exactly.
    twin = RetryPolicy(max_attempts=3, jitter=0.5, seed=42)
    with query_scope(7):
        assert twin.backoff(0, site="ladder.requested") == a0


def test_fault_decisions_keyed_per_query():
    """Under query_scope, a query's faults ignore other queries' traffic."""

    def draws(query_id: int, injector: FaultInjector):
        fired = []
        with query_scope(query_id):
            for _ in range(8):
                try:
                    injector.arrive("site.x")
                    fired.append(False)
                except Exception:
                    fired.append(True)
        return fired

    # Run query 1 alone...
    inj_a = FaultInjector(
        [FaultSpec("site.x", kind="error", probability=0.5)], seed=9
    )
    alone = draws(1, inj_a)
    # ...and after heavy traffic from query 2: identical decisions.
    inj_b = FaultInjector(
        [FaultSpec("site.x", kind="error", probability=0.5)], seed=9
    )
    draws(2, inj_b)
    draws(2, inj_b)
    interleaved = draws(1, inj_b)
    assert alone == interleaved
