"""Query-lifecycle observability, end to end: traces, metrics, EXPLAIN.

AQP's whole pitch is a trade — accuracy for time — and a trade you
cannot see is a trade you cannot audit. This example drives the
observability layer (:mod:`repro.obs`, DESIGN.md §2.13) through five
acts:

1. ``EXPLAIN ANALYZE`` on an approximate query: plan, span tree, cost;
2. the same query traced programmatically, dumped as schema-validated
   JSON;
3. a degradation-ladder query whose trace shows the descent (a faulted
   rung, the rung that rescued it, the injected ``fault`` span);
4. a scatter-gather query with one ``shard.<i>`` subtree per worker;
5. the process-wide metrics registry accumulated across all of it.

Run:  python examples/observability_demo.py
"""

import numpy as np

from repro import Database
from repro.engine.table import Table
from repro.obs import (
    Tracer,
    get_metrics,
    render_span_tree,
    trace_scope,
    validate_span,
)
from repro.offline.catalog import SampleEntry, SynopsisCatalog
from repro.resilience import FaultInjector, FaultSpec, ResilientEngine, inject
from repro.sampling.row import srs_sample
from repro.sharding import ScatterGatherExecutor, ShardedTable

NUM_ROWS = 120_000
QUERY = "SELECT SUM(price) AS s FROM sales ERROR WITHIN 5% CONFIDENCE 95%"


def build_world() -> Database:
    rng = np.random.default_rng(7)
    prices = rng.lognormal(3.0, 1.0, NUM_ROWS)
    db = Database()
    db.create_table("sales", {"price": prices})
    # A sample built at 80% of the table: stale, so the ladder's second
    # rung has something to widen when the requested rung is broken.
    prefix = int(NUM_ROWS * 0.8)
    sample = srs_sample(
        Table({"price": prices[:prefix]}, name="sales"),
        2_000,
        np.random.default_rng(13),
    )
    SynopsisCatalog(db).add_sample(
        SampleEntry(
            table="sales", sample=sample, kind="uniform",
            built_at_rows=prefix,
        )
    )
    return db


def act1_explain_analyze(db: Database) -> None:
    print("=== 1. EXPLAIN ANALYZE ===")
    print(db.sql("EXPLAIN ANALYZE " + QUERY, seed=3))
    print()


def act2_programmatic(db: Database) -> None:
    print("=== 2. trace_scope + JSON span tree ===")
    with trace_scope(Tracer()) as tracer:
        db.sql(QUERY, seed=3)
    doc = tracer.to_dict()
    errors = [e for root in doc["spans"] for e in validate_span(root)]
    root = doc["spans"][0]
    print(
        f"  {len(tracer.spans)} spans, root {root['name']!r} "
        f"technique={root['attributes'].get('technique')}, "
        f"schema errors: {errors or 'none'}"
    )
    print()


def act3_ladder_descent(db: Database) -> None:
    print("=== 3. a traced descent down the ladder ===")
    engine = ResilientEngine(db, warn_on_degrade=False)
    injector = FaultInjector(
        [FaultSpec(site="ladder.requested", kind="error")], seed=5
    )
    tracer = Tracer()
    with trace_scope(tracer):
        with inject(injector):
            result = engine.sql(QUERY, seed=3)
    print(render_span_tree(tracer, show_timing=False))
    print(f"  served from rung: {result.provenance[-1]['rung']}")
    print()


def act4_sharded(db: Database) -> None:
    print("=== 4. scatter-gather: one subtree per shard ===")
    sharded = ShardedTable.from_table(db.table("sales"), 4)
    executor = ScatterGatherExecutor(sharded, max_workers=4)
    tracer = Tracer()
    with trace_scope(tracer):
        executor.sql("SELECT SUM(price) AS s FROM sales", seed=3)
    print(render_span_tree(tracer, show_timing=False))
    print()


def act5_metrics() -> None:
    print("=== 5. the metrics registry saw all of it ===")
    snapshot = get_metrics().snapshot(include_caches=False)
    for name, value in sorted(snapshot["counters"].items()):
        print(f"  {name} = {value:g}")


def main() -> None:
    db = build_world()
    act1_explain_analyze(db)
    act2_programmatic(db)
    act3_ladder_descent(db)
    act4_sharded(db)
    act5_metrics()


if __name__ == "__main__":
    main()
