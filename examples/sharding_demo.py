"""Scatter-gather over shards, through a shard kill, honestly.

A table split across 8 shards answers an aggregate by fanning the query
out, merging per-shard partials, and reporting per-shard provenance.
This example runs three acts —

1. a healthy 8-shard query whose merged answer matches the single-table
   engine bit for bit,
2. a slow shard abandoned mid-scan and rescued by a hedged retry
   (still exact: the retry re-reads the whole shard),
3. a killed shard: the executor serves the surviving 7, widens the
   confidence interval by the dead shard's catalog envelope so the
   interval still covers the whole-table truth, and flags the answer
   degraded —

and a coda where too many shards die and the only honest answer is a
typed ``QueryRefused`` carrying the per-shard post-mortem.

Run:  python examples/sharding_demo.py
"""

import numpy as np

from repro import Database
from repro.core.exceptions import QueryRefused
from repro.engine.table import Table
from repro.resilience import (
    Deadline,
    FaultInjector,
    FaultSpec,
    ManualClock,
    inject,
    kill_shard,
    shard_site,
)
from repro.sharding import ScatterGatherExecutor, ShardedTable

NUM_ROWS = 400_000
NUM_SHARDS = 8
#: small enough that every shard scan spans several blocks — the
#: straggler check in act 2 runs at block boundaries
BLOCK_SIZE = 8_192
SEED = 19

QUERY = "SELECT SUM(amount) AS s, COUNT(*) AS c FROM orders WHERE amount > 40"


def show(title, result=None, refusal=None, truth=None):
    print(f"=== {title} ===")
    provenance = (
        result.provenance if result is not None else refusal.provenance
    )
    for step in provenance:
        if "shard" in step:
            line = f"  shard {step['shard']}: {step['status']:>13}"
            if step.get("attempts"):
                line += f"  attempts={list(step['attempts'])}"
            if step.get("error"):
                line += f"  error: {step['error']}"
        else:
            line = (
                f"  [{step['outcome']:>6}] {step['rung']}"
                f"  ({step.get('detail', '')})"
            )
        print(line)
    if result is not None:
        if hasattr(result, "estimate"):
            cell = result.estimate("s", 0)
            covered = cell.ci_low <= truth <= cell.ci_high
            print(
                f"  SUM {cell.value:14.1f}  CI [{cell.ci_low:.1f}, "
                f"{cell.ci_high:.1f}]  covers truth: {covered}"
                f"  degraded={result.is_degraded}"
            )
        else:
            value = float(result.table["s"][0])
            print(f"  SUM {value:14.1f}  exact (== truth: "
                  f"{abs(value - truth) < 1e-6})")
    print()


def main() -> None:
    rng = np.random.default_rng(SEED)
    amounts = rng.exponential(50.0, NUM_ROWS)
    db = Database()
    db.create_table("orders", {"amount": amounts})
    truth = float(amounts[amounts > 40].sum())

    sharded = ShardedTable.from_table(
        Table({"amount": amounts}, name="orders", block_size=BLOCK_SIZE),
        NUM_SHARDS,
    )
    executor = ScatterGatherExecutor(sharded)

    # Act 1 — healthy fan-out: merged partials equal the engine's answer.
    result = executor.sql(QUERY)
    engine_answer = float(db.sql(QUERY).table["s"][0])
    assert abs(float(result.table["s"][0]) - engine_answer) < 1e-6
    show("act 1: 8 healthy shards, merged == single-table", result,
         truth=truth)

    # Act 2 — one straggler: the primary attempt is abandoned once it
    # eats past its carve-out of the deadline; the hedged retry finishes.
    clock = ManualClock()
    straggle = FaultSpec(
        site=shard_site(2, "scan"), kind="slow", delay=3.0,
        probability=1.0, max_fires=1,
    )
    hedger = ScatterGatherExecutor(sharded, hedge_fraction=0.2)
    with inject(FaultInjector([straggle], clock=clock)):
        result = hedger.sql(
            QUERY, deadline=Deadline(10.0, clock=clock)
        )
    show("act 2: straggler abandoned, hedge serves exact", result,
         truth=truth)

    # Act 3 — a dead shard: 7 of 8 served, interval widened by the dead
    # shard's catalog envelope, answer flagged degraded.
    with inject(FaultInjector([kill_shard(5)])):
        result = executor.sql(QUERY)
    show("act 3: shard 5 killed, widened bars still cover", result,
         truth=truth)

    # Coda — below quorum there is no honest interval left to widen.
    doomed = ScatterGatherExecutor(sharded, min_coverage=0.75)
    specs = [kill_shard(i) for i in range(4)]
    try:
        with inject(FaultInjector(specs)):
            doomed.sql(QUERY)
    except QueryRefused as exc:
        show("coda: 4 of 8 dead, typed refusal with provenance",
             refusal=exc)

    print("scatter-gather kept every answer honest: exact when whole, "
          "widened when partial, refused when broken")


if __name__ == "__main__":
    main()
