"""Progressive answers with online aggregation and ripple joins.

OLA-style interfaces stream an estimate that tightens while the user
watches. This example renders the convergence of (1) a filtered SUM via
:class:`~repro.online.ola.OnlineAggregator` and (2) a join aggregate via
:class:`~repro.online.ripple.RippleJoin`, then demonstrates the *peeking*
pitfall: stopping the moment the interval first looks good is not a 95%
procedure.

Run:  python examples/progressive_results.py
"""

import numpy as np

from repro import Table
from repro.online import OnlineAggregator, RippleJoin, peeking_coverage

SEED = 5


def progress_bar(snapshot_value, truth, rel_width, frac):
    err = abs(snapshot_value - truth) / truth
    bar = "#" * int(frac * 30)
    return (
        f"  [{bar:<30}] seen {frac:6.1%}  est {snapshot_value:14.1f}  "
        f"±{rel_width:6.2%}  (true err {err:6.2%})"
    )


def main() -> None:
    rng = np.random.default_rng(SEED)
    n = 400_000
    table = Table(
        {
            "amount": rng.lognormal(3.0, 1.2, n),
            "status": rng.integers(0, 3, n),
        }
    )
    mask = table["status"] == 1
    truth = float(table["amount"][mask].sum())

    print("=== online aggregation: SUM(amount) WHERE status = 1 ===")
    ola = OnlineAggregator(
        table, "amount", "sum", predicate_mask=mask, confidence=0.95, seed=SEED
    )
    for snap in ola.run(batch_size=20_000, target_relative_error=0.01):
        print(
            progress_bar(
                snap.value, truth, snap.relative_half_width, snap.fraction_seen
            )
        )
    print(f"  stopped at {snap.fraction_seen:.1%} of the data; "
          f"final CI ±{snap.relative_half_width:.2%}\n")

    print("=== ripple join: SUM(fact.v * dim.weight) converging ===")
    d = 1000
    keys = rng.integers(0, d, 150_000)
    fact = Table({"k": keys, "v": rng.exponential(8.0, 150_000)})
    dim = Table({"k": np.arange(d), "weight": rng.random(d)})
    join_truth = float(np.sum(fact["v"] * dim["weight"][keys]))
    ripple = RippleJoin(fact, dim, "k", "k", "v", "weight", seed=SEED)
    while not ripple.is_exhausted:
        snap = ripple.advance(15_000)
        frac = snap.rows_read_left / fact.num_rows
        print(
            progress_bar(
                snap.value, join_truth,
                min(snap.relative_half_width, 9.99), frac,
            )
        )
        if snap.relative_half_width < 0.01:
            break

    print("\n=== the peeking pitfall ===")
    pop = rng.lognormal(1.0, 2.2, 30_000)
    coverage = peeking_coverage(
        pop, target_relative_error=0.3, confidence=0.95,
        num_trials=100, batch_size=50, seed=SEED,
    )
    print(
        f"stopping at the FIRST moment the 95% CI looks within ±30% gives\n"
        f"realized coverage of only {coverage:.0%} — monitoring a shrinking\n"
        f"interval and stopping early invalidates it, which is why OLA\n"
        f"intervals are not a-priori guarantees (survey §online-aggregation)."
    )


if __name__ == "__main__":
    main()
