"""The concurrent serving front-end, end to end: admit, budget, shed.

One `Database` can answer one query honestly; a *serving system* must
answer many at once, from tenants with different entitlements, under
bursts it did not provision for. This example drives
:class:`~repro.serving.ServingFrontend` through four acts —

1. calm traffic: the frontend is a transparent wrapper (same answer the
   raw engine gives, shed level 0, nothing skipped),
2. a tenant on a small cost budget: admission charges the pessimistic
   full-scan estimate, completion refunds what approximation saved, and
   an empty bucket is a typed ``QueryRejected(reason="budget")``,
3. a 6x overload burst into a tiny queue: synchronous typed overload
   rejections plus adaptive shedding that enters the degradation ladder
   at a lower rung fleet-wide (``shed_to`` provenance on every skip),
4. recovery: calm traffic steps the shed level back down (slowly — fast
   attack, slow release).

Run:  python examples/serving_demo.py
"""

import numpy as np

from repro import Database
from repro.core.exceptions import QueryRejected
from repro.serving import ServingFrontend, TenantBudgets

NUM_ROWS = 120_000
SEED = 7

QUERY = "SELECT SUM(v) AS s FROM events ERROR WITHIN 10% CONFIDENCE 95%"


def main() -> None:
    rng = np.random.default_rng(SEED)
    values = rng.lognormal(2.0, 1.0, NUM_ROWS)
    truth = float(values.sum())

    db = Database()
    db.create_table("events", {"v": values}, block_size=2048)
    print(f"true SUM(v) = {truth:.1f} over {NUM_ROWS:,} rows\n")

    # ------------------------------------------------------------------
    print("=== act 1: calm traffic — the frontend is transparent ===")
    fe = ServingFrontend(db, workers=2, max_queue=32, seed=SEED)
    direct = db.sql(QUERY, seed=1)
    served = fe.sql(QUERY, seed=1)
    cell = served.estimate("s", 0)
    print(f"  direct engine : {direct.estimate('s', 0).value:.1f}")
    print(f"  via frontend  : {cell.value:.1f}  "
          f"CI [{cell.ci_low:.1f}, {cell.ci_high:.1f}]")
    assert served.estimate("s", 0).value == direct.estimate("s", 0).value
    print("  identical — at shed level 0 the wrapper adds nothing.\n")
    fe.close()

    # ------------------------------------------------------------------
    print("=== act 2: per-tenant budgets in simulated cost units ===")
    budgets = TenantBudgets()
    fe = ServingFrontend(db, workers=2, max_queue=32, budgets=budgets,
                         seed=SEED)
    estimate = fe.estimate_cost(QUERY)
    # Enough for the *estimate* (a full scan) exactly twice.
    budgets.configure("acme", capacity=2.2 * estimate, refill_rate=0.0)
    print(f"  full-scan admission estimate: {estimate:.1f} cost units; "
          f"tenant 'acme' holds {2.2 * estimate:.1f}")
    for i in range(4):
        before = budgets.available("acme")
        try:
            fe.sql(QUERY, tenant="acme", seed=10 + i)
            after = budgets.available("acme")
            print(f"  query {i}: served   (available {before:8.1f} -> "
                  f"{after:8.1f}; sampling refunded most of the charge)")
        except QueryRejected as exc:
            print(f"  query {i}: rejected (reason={exc.reason!r}, "
                  f"available {before:.1f} < estimate {estimate:.1f})")
    fe.close()
    print("  approximate queries reconcile cheap — the bucket outlasts "
          "2 full-scan charges.\n")

    # ------------------------------------------------------------------
    print("=== act 3: a 6x burst into a queue of 4 — shed, don't fall ===")
    fe = ServingFrontend(db, workers=1, max_queue=4, seed=SEED)
    tickets, rejected = [], 0
    for i in range(24):
        try:
            tickets.append(fe.submit(
                QUERY,
                tenant=f"t{i % 3}",
                priority="interactive" if i % 2 else "batch",
                seed=100 + i,
            ))
        except QueryRejected:
            rejected += 1
    fe.drain(timeout=60.0)
    shed_counts = {}
    for t in tickets:
        result = t.result()
        for step in result.provenance:
            if step.get("shed_to"):
                shed_counts[step["shed_to"]] = (
                    shed_counts.get(step["shed_to"], 0) + 1
                )
    snap = fe.metrics_snapshot()
    print(f"  {len(tickets)} admitted, {rejected} rejected synchronously "
          f"(typed, reason='overload')")
    print(f"  final shed level: {snap['shed_level']}")
    if shed_counts:
        for rung, n in sorted(shed_counts.items()):
            print(f"  {n:3d} skipped-rung provenance steps with "
                  f"shed_to={rung!r}")
        print("  every shed is recorded per query — auditable, not a "
              "silent config flip.")
    sample = None
    if shed_counts:
        sample = next(
            (t for t in tickets
             if any(s.get("shed_to") for s in t.result().provenance)),
            None,
        )
    if sample is not None:
        print("  one shed query's ladder trail:")
        for step in sample.result().provenance:
            extra = f" shed_to={step['shed_to']}" if step.get("shed_to") else ""
            print(f"    [{step['outcome']:>7}] {step['rung']}{extra}")
    print()

    # ------------------------------------------------------------------
    print("=== act 4: recovery — calm traffic steps the level down ===")
    level = fe.metrics_snapshot()["shed_level"]
    waves = 0
    while fe.metrics_snapshot()["shed_level"] > 0 and waves < 40:
        fe.sql(QUERY, seed=200 + waves)
        waves += 1
    print(f"  started at level {level}; back to level "
          f"{fe.metrics_snapshot()['shed_level']} after {waves} calm "
          f"queries (recovery needs consecutive calm evaluations).")
    fe.close()


if __name__ == "__main__":
    main()
