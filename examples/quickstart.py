"""Quickstart: exact vs. approximate SQL in five minutes.

Creates a skewed sales table, runs the same aggregate query exactly and
with an ``ERROR WITHIN ... CONFIDENCE ...`` specification, and prints the
trade-off matrix the library's advisor reasons with.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Database, comparison_matrix, format_matrix

SEED = 7
NUM_ROWS = 400_000


def build_database() -> Database:
    rng = np.random.default_rng(SEED)
    db = Database()
    db.create_table(
        "sales",
        {
            "price": np.round(rng.exponential(120.0, NUM_ROWS), 2),
            "quantity": rng.integers(1, 12, NUM_ROWS),
            "region": rng.choice(
                np.asarray(["east", "west", "north", "south"], dtype=object),
                NUM_ROWS,
            ),
            "channel": rng.choice(
                np.asarray(["web", "store", "phone"], dtype=object), NUM_ROWS
            ),
        },
        block_size=1024,
    )
    return db


def main() -> None:
    db = build_database()

    query = (
        "SELECT region, SUM(price) AS revenue, AVG(price) AS avg_price, "
        "COUNT(*) AS orders FROM sales WHERE quantity > 2 GROUP BY region "
        "ORDER BY revenue DESC"
    )

    print("=== exact execution ===")
    exact = db.sql(query)
    for row in exact.to_pylist():
        print(
            f"  {row['region']:>6}: revenue={row['revenue']:14.2f} "
            f"avg={row['avg_price']:8.2f} orders={row['orders']:9.0f}"
        )
    print(f"  blocks read: {exact.stats.blocks_scanned} (all of them)")

    print("\n=== approximate execution (±5% at 95% confidence) ===")
    approx = db.sql(query + " ERROR WITHIN 5% CONFIDENCE 95%", seed=SEED)
    for row in approx.to_pylist():
        print(
            f"  {row['region']:>6}: revenue={row['revenue']:14.2f} "
            f"avg={row['avg_price']:8.2f} orders={row['orders']:9.0f}"
        )
    print(f"  technique: {approx.technique}")
    print(f"  fraction of blocks read: {approx.fraction_scanned:.2%}")
    print(f"  estimated speedup (cost model): {approx.speedup:.1f}x")
    print(f"  widest reported CI (relative): {approx.max_relative_half_width():.2%}")

    # Compare side by side.
    print("\n=== exact vs approximate revenue ===")
    truth = {r["region"]: r["revenue"] for r in exact.to_pylist()}
    for row in approx.to_pylist():
        err = abs(row["revenue"] - truth[row["region"]]) / truth[row["region"]]
        cell = next(
            c for a, i, c in approx.iter_estimates() if a == "revenue"
            and approx.table["region"][i] == row["region"]
        )
        print(
            f"  {row['region']:>6}: achieved error {err:.2%}  "
            f"CI [{cell.ci_low:14.2f}, {cell.ci_high:14.2f}]"
        )

    print("\n=== the no-silver-bullet matrix ===")
    print(format_matrix(comparison_matrix()))
    print(
        "\nNo non-exact row maximizes generality, guarantee, and speedup\n"
        "simultaneously — the paper's thesis, as computed capabilities."
    )


if __name__ == "__main__":
    main()
