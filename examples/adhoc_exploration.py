"""Ad-hoc data exploration over TPC-H-lite with online AQP.

The scenario the online-AQP line (Quickr, pilot-based planning) targets:
an analyst fires queries nobody anticipated, so nothing is precomputed.
Every query below goes through the advisor, which plans a fresh sampling
strategy per query and falls back to exact execution when sampling cannot
help (selective predicates, non-linear aggregates).

Run:  python examples/adhoc_exploration.py
"""

from repro import ApproximateResult
from repro.workloads import generate_tpch

SEED = 3

SESSION = [
    (
        "How big is the lineitem table's revenue overall?",
        "SELECT SUM(l_extendedprice) AS revenue FROM lineitem",
    ),
    (
        "Average discount on large orders?",
        "SELECT AVG(l_discount) AS avg_disc FROM lineitem WHERE l_quantity > 40",
    ),
    (
        "Revenue by ship mode, recent shipments only",
        "SELECT l_shipmode, SUM(l_extendedprice) AS revenue, COUNT(*) AS n "
        "FROM lineitem WHERE l_shipdate > 1500 GROUP BY l_shipmode",
    ),
    (
        "Revenue by order priority (join with orders)",
        "SELECT o.o_orderpriority AS priority, SUM(l.l_extendedprice) AS rev "
        "FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey "
        "GROUP BY o.o_orderpriority",
    ),
    (
        "A needle-in-haystack filter (sampling should refuse)",
        "SELECT SUM(l_extendedprice) AS s FROM lineitem "
        "WHERE l_extendedprice > 49990",
    ),
    (
        "A non-linear aggregate (sampling cannot bound it)",
        "SELECT MAX(l_extendedprice) AS most_expensive FROM lineitem",
    ),
]


def main() -> None:
    print("generating TPC-H-lite at scale 5 (~600k lineitem rows)...")
    db = generate_tpch(scale=5.0, seed=SEED, block_size=512)

    for question, sql in SESSION:
        print(f"\n--- {question}")
        approx = db.sql(sql + " ERROR WITHIN 5% CONFIDENCE 95%", seed=SEED)
        exact = db.sql(sql)
        if isinstance(approx, ApproximateResult):
            print(
                f"    technique={approx.technique}  "
                f"blocks read={approx.fraction_scanned:.1%}  "
                f"speedup~{approx.speedup:.1f}x  "
                f"(diag: {approx.diagnostics.get('sampling_rate') or approx.diagnostics.get('rate')})"
            )
            for alias, row, cell in approx.iter_estimates()[:6]:
                truth_col = exact.table[alias]
                truth = float(truth_col[min(row, len(truth_col) - 1)])
                achieved = abs(cell.value - truth) / abs(truth) if truth else 0.0
                print(
                    f"    {alias}[{row}] ≈ {cell.value:14.2f}  "
                    f"true {truth:14.2f}  err {achieved:.2%}  "
                    f"CI ±{cell.relative_half_width:.2%}"
                )
        else:
            print(
                "    advisor fell back to EXACT execution "
                f"(rows={approx.table.num_rows}) — sampling was infeasible "
                "or unprofitable for this query."
            )
            first = approx.table.column_names[0]
            print(f"    {first} = {approx.table[first][:3]} ...")


if __name__ == "__main__":
    main()
