"""Dashboard analytics with precomputed samples (the BlinkDB workflow).

The scenario the offline-AQP literature targets: a BI dashboard fires the
same family of group-by queries all day. We:

1. declare the expected workload (which columns dashboards group by),
2. let the BlinkDB-style selector choose stratified samples under a
   storage budget,
3. serve dashboard queries from the samples with a-priori error checks,
4. then *drift* the workload and watch coverage collapse — the
   maintenance/workload-sensitivity trade-off in action.

Run:  python examples/dashboard_analytics.py
"""

import numpy as np

from repro import Database, ErrorSpec
from repro.offline import (
    BlinkDBSelector,
    QueryTemplate,
    SynopsisCatalog,
    workload_coverage,
)
from repro.workloads import WorkloadGenerator, WorkloadSpec, drift

SEED = 42
NUM_ROWS = 500_000


def build_clickstream() -> Database:
    rng = np.random.default_rng(SEED)
    db = Database()
    db.create_table(
        "events",
        {
            "latency_ms": rng.lognormal(4.0, 1.0, NUM_ROWS),
            "bytes": rng.exponential(2048.0, NUM_ROWS),
            "country": rng.integers(0, 40, NUM_ROWS),
            "browser": rng.integers(0, 8, NUM_ROWS),
            "page": rng.integers(0, 200, NUM_ROWS),
            "selector": rng.random(NUM_ROWS),
        },
        block_size=1024,
    )
    return db


def main() -> None:
    db = build_clickstream()
    catalog = SynopsisCatalog(db)

    # 1. The dashboards we expect to serve.
    expected = [
        QueryTemplate("events", ("country",), frequency=10.0),
        QueryTemplate("events", ("browser",), frequency=6.0),
        QueryTemplate("events", ("country", "browser"), frequency=2.0),
    ]

    # 2. Pick samples under a 60k-row budget.
    selector = BlinkDBSelector(db, budget_rows=60_000, rows_per_stratum=300, seed=SEED)
    entries, coverage = selector.build_for_workload(expected)
    print(f"selected {len(entries)} sample(s); expected-workload coverage "
          f"{coverage:.0%}; storage used {catalog.storage_rows():,} rows "
          f"of {db.table('events').num_rows:,}")

    # 3. Serve a dashboard query.
    query = (
        "SELECT browser, AVG(latency_ms) AS avg_latency, COUNT(*) AS hits "
        "FROM events GROUP BY browser ERROR WITHIN 10% CONFIDENCE 95%"
    )
    result = db.sql(query, seed=SEED)
    print(f"\ndashboard query served by: {result.technique}")
    exact = db.sql(
        "SELECT browser, AVG(latency_ms) AS avg_latency FROM events GROUP BY browser"
    )
    truth = {r["browser"]: r["avg_latency"] for r in exact.to_pylist()}
    for row in sorted(result.to_pylist(), key=lambda r: r["browser"]):
        err = abs(row["avg_latency"] - truth[row["browser"]]) / truth[row["browser"]]
        print(
            f"  browser {row['browser']}: avg latency {row['avg_latency']:8.1f} ms "
            f"(true error {err:.2%}, hits≈{row['hits']:9.0f})"
        )

    # 4. The workload drifts: analysts pivot to per-page breakdowns.
    spec = WorkloadSpec(
        table="events",
        column_weights={"country": 10.0, "browser": 6.0, "page": 0.5},
        measure="latency_ms",
        selector=None,
    )
    print("\nworkload drift sweep (coverage of the live workload by the "
          "precomputed samples):")
    for amount in (0.0, 0.25, 0.5, 0.75, 1.0):
        live = WorkloadGenerator(drift(spec, amount), seed=1).sample_templates(200)
        cov = workload_coverage(catalog, live)
        bar = "#" * int(cov * 40)
        print(f"  drift={amount:4.2f}  coverage={cov:6.1%}  {bar}")

    print(
        "\nAs the workload drifts toward columns nobody pre-sampled, the\n"
        "offline catalog answers less and less — queries fall back to the\n"
        "online planners (or exact execution), which is exactly the\n"
        "generality limitation the survey attributes to offline AQP."
    )


if __name__ == "__main__":
    main()
