"""Telemetry pipeline on sketches: the queries sampling cannot answer.

A stream of page-view events is summarized into a few KB of sketches —
distinct users (HLL/KMV), top pages (SpaceSaving), per-page counts
(Count-Min), and latency percentiles (Greenwald–Khanna) — then queried
without ever touching the raw events again. Each of these is an aggregate
class where row sampling either fails outright (COUNT DISTINCT, MAX-ish
tail percentiles) or wastes memory, the specialization half of the
"no silver bullet" argument.

Run:  python examples/telemetry_sketches.py
"""

import numpy as np

from repro.sketches import (
    CountMinSketch,
    GKQuantileSketch,
    HyperLogLog,
    KMVSketch,
    SpaceSaving,
)
from repro.sketches.hyperloglog import sample_based_distinct_estimate

SEED = 11
EVENTS = 800_000
USERS = 120_000
PAGES = 5_000


def main() -> None:
    rng = np.random.default_rng(SEED)
    # Zipf page popularity, heavy-tailed latencies, uniform-ish users.
    ranks = np.arange(1, PAGES + 1, dtype=np.float64)
    page_probs = ranks**-1.2
    page_probs /= page_probs.sum()
    pages = rng.choice(PAGES, EVENTS, p=page_probs)
    users = rng.integers(0, USERS, EVENTS)
    users[:USERS] = np.arange(USERS)  # every user appears at least once
    latencies = rng.lognormal(4.0, 0.9, EVENTS)

    print(f"ingesting {EVENTS:,} events into sketches...")
    hll = HyperLogLog(precision=12, seed=1)
    kmv_today = KMVSketch(k=2048, seed=2)
    kmv_yesterday = KMVSketch(k=2048, seed=2)
    top_pages = SpaceSaving(capacity=200)
    page_counts = CountMinSketch(epsilon=0.0005, delta=0.01, seed=3)
    latency_q = GKQuantileSketch(epsilon=0.005)

    half = EVENTS // 2
    hll.add(users)
    kmv_yesterday.add(users[:half])
    kmv_today.add(users[half:])
    top_pages.add(pages.tolist())
    page_counts.add(pages)
    latency_q.add(latencies[:100_000])  # GK ingest is per-item; sample the stream

    total_bytes = (
        hll.memory_bytes()
        + kmv_today.memory_bytes()
        + kmv_yesterday.memory_bytes()
        + page_counts.memory_bytes()
    )
    print(f"sketch state: ~{total_bytes / 1024:.0f} KiB "
          f"(raw events would be ~{EVENTS * 24 / 2**20:.0f} MiB)\n")

    # --- distinct users ------------------------------------------------
    true_users = len(np.unique(users))
    print("distinct users")
    print(f"  truth:                    {true_users:,}")
    print(f"  HyperLogLog (4 KiB):      {hll.estimate():,.0f} "
          f"({abs(hll.estimate() - true_users) / true_users:.2%} error)")
    sample = users[rng.random(EVENTS) < 0.01]
    bad = sample_based_distinct_estimate(sample, 0.01, EVENTS)
    print(f"  1% row sample (naive):    {bad:,.0f} "
          f"({abs(bad - true_users) / true_users:.1%} error) <- sampling fails")

    # --- set operations across days -------------------------------------
    both = kmv_today.intersection_estimate(kmv_yesterday)
    print("\nreturning users (KMV set intersection)")
    true_both = len(
        np.intersect1d(np.unique(users[:half]), np.unique(users[half:]))
    )
    print(f"  truth: {true_both:,}   estimate: {both:,.0f} "
          f"({abs(both - true_both) / true_both:.2%} error)")

    # --- top pages -------------------------------------------------------
    print("\ntop pages (SpaceSaving, guaranteed complete above 0.5%)")
    true_counts = np.bincount(pages, minlength=PAGES)
    for page, count in top_pages.top_k(5):
        print(f"  page {page:>5}: est {count:>8,}   true {true_counts[page]:>8,}")

    # --- point frequency ---------------------------------------------------
    probe = 3
    print(f"\nviews of page {probe} (Count-Min, one-sided error ≤ "
          f"{page_counts.error_bound:,.0f})")
    print(f"  est {page_counts.query_one(probe):,}   true {true_counts[probe]:,}")

    # --- latency percentiles -------------------------------------------------
    print("\nlatency percentiles (Greenwald–Khanna on a 100k-event window)")
    window = latencies[:100_000]
    for phi in (0.5, 0.9, 0.99):
        est = latency_q.query(phi)
        true = float(np.quantile(window, phi))
        print(f"  p{int(phi * 100):>2}: est {est:8.1f} ms   true {true:8.1f} ms")
    print(f"  sketch entries: {latency_q.memory_entries()} "
          f"(vs 100,000 raw values)")


if __name__ == "__main__":
    main()
