"""The degradation ladder, end to end: answer, degrade, refuse.

A serving system built on AQP has failure modes the techniques
themselves don't model: the synopsis is stale, the builder is flaky, the
deadline was mostly gone before the query arrived. This example drives
:class:`~repro.resilience.ladder.ResilientEngine` through four acts —

1. a healthy query served at the requested rung,
2. a broken requested rung rescued by a *stale* sample with honestly
   widened error bars,
3. a nearly-exhausted deadline served from a partial online-aggregation
   snapshot,
4. every rung faulted at once, ending in a typed ``QueryRefused`` —

printing the ``provenance`` trail each outcome carries.

Run:  python examples/resilience_demo.py
"""

import warnings

import numpy as np

from repro import Database
from repro.core.exceptions import DegradedAnswer, QueryRefused
from repro.engine.table import Table
from repro.offline.catalog import SampleEntry, SynopsisCatalog
from repro.resilience import (
    Deadline,
    FaultInjector,
    FaultSpec,
    ManualClock,
    ResilientEngine,
    inject,
)
from repro.sampling.row import srs_sample

NUM_ROWS = 200_000
SEED = 11

QUERY = "SELECT SUM(price) AS s FROM sales ERROR WITHIN 5% CONFIDENCE 95%"


def show(title, result=None, refusal=None, truth=None):
    print(f"=== {title} ===")
    provenance = result.provenance if result is not None else refusal.provenance
    for step in provenance:
        line = f"  [{step['outcome']:>7}] {step['rung']}"
        if step.get("detail"):
            line += f"  ({step['detail']})"
        if step.get("error"):
            line += f"  error: {step['error']}"
        print(line)
    if result is not None:
        cell = result.estimate("s", 0)
        err = abs(cell.value - truth) / truth
        print(
            f"  answer {cell.value:14.1f}  CI [{cell.ci_low:.1f}, {cell.ci_high:.1f}]"
            f"  true err {err:.2%}  degraded={result.is_degraded}"
        )
        if getattr(result, "spec", None) is not None:
            print(
                f"  claimed spec: rel error <= {result.spec.relative_error:.1%} "
                f"at {result.spec.confidence:.0%} confidence"
            )
    print()


def main() -> None:
    rng = np.random.default_rng(SEED)
    prices = rng.lognormal(3.0, 1.0, NUM_ROWS)
    truth = float(prices.sum())

    db = Database()
    db.create_table("sales", {"price": prices})

    # A sample built when the table was 20% smaller: usable, but stale.
    prefix = int(NUM_ROWS * 0.8)
    catalog = SynopsisCatalog(db)
    catalog.add_sample(
        SampleEntry(
            table="sales",
            sample=srs_sample(Table({"price": prices[:prefix]}, name="sales"),
                              2_000, rng),
            kind="uniform",
            built_at_rows=prefix,
        )
    )

    engine = ResilientEngine(db, warn_on_degrade=True)
    print(f"true SUM(price) = {truth:.1f}  over {NUM_ROWS:,} rows\n")

    # Act 1 — nothing is broken: the requested technique answers.
    result = engine.sql(QUERY, seed=1)
    show("act 1: healthy — requested rung answers", result, truth=truth)

    # Act 2 — the requested rung dies; the stale sample steps in with
    # error bars widened by the staleness rule half' = half*(1+s) + s*|v|.
    kill_requested = FaultInjector(
        [FaultSpec(site="ladder.requested", kind="error", probability=1.0)],
        seed=0,
    )
    with inject(kill_requested), warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = engine.sql(QUERY, seed=2)
    show("act 2: requested rung broken — stale sample, widened bars",
         result, truth=truth)
    degraded_warnings = [w for w in caught
                         if issubclass(w.category, DegradedAnswer)]
    print(f"  (a DegradedAnswer warning was emitted: "
          f"{bool(degraded_warnings)})\n")

    # Act 3 — the deadline is gone before the query starts: the ladder
    # skips everything that needs time and serves the partial-OLA rung's
    # snapshot, an honest CI over whatever fraction one batch covers.
    clock = ManualClock()
    deadline = Deadline(2.0, clock=clock)
    clock.advance(2.5)  # simulated queueing: the query arrives late
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedAnswer)
        result = engine.sql(QUERY, seed=3, deadline=deadline)
    show("act 3: deadline pre-expired — partial-OLA snapshot",
         result, truth=truth)

    # Act 4 — every rung faulted: the only honest outcome is a typed
    # refusal that still explains exactly what was tried.
    kill_all = FaultInjector(
        [
            FaultSpec(site=f"ladder.{rung}", kind="error", probability=1.0)
            for rung in ("requested", "stale_synopsis", "cheaper_technique",
                         "partial_ola", "exact_no_guarantee")
        ],
        seed=0,
    )
    fresh = ResilientEngine(db, warn_on_degrade=False)
    with inject(kill_all):
        try:
            fresh.sql(QUERY, seed=4)
        except QueryRefused as exc:
            show("act 4: everything broken — typed refusal with provenance",
                 refusal=exc)
            print(f"  refusal message: {exc}")


if __name__ == "__main__":
    main()
